"""The shard-set image: N per-shard images committed as one global cut.

Layout under an image root shared by every shard::

    <root>/<gid>--s0/            # ordinary per-shard suspend images,
    <root>/<gid>--s1/            #   committed by the normal ImageStore
    ...                          #   protocol (blobs, control, manifest)
    <root>/<gid>/
        CHANNELS.json            # channel + coordinator state, written
                                 #   with the atomic tmp/fsync/rename
                                 #   discipline, checksummed below
        SHARDSET.json            # written last; its rename is the
                                 #   *global* commit point

A shard-set is committed iff ``SHARDSET.json`` exists, parses, its
recorded checksum matches ``CHANNELS.json``, and every member image it
names verifies under the per-image protocol. Anything less is **torn**:
the cut never happened, and the member images that did commit are
*stranded* — individually valid but useless, because resuming a subset of
shards against a cut the others never joined would be silent corruption.
:func:`classify_shardsets` makes that judgement explicit; resume raises
:class:`~repro.common.errors.InconsistentCutError` instead of guessing.

``ImageStore.recover()`` deliberately skips shard-set directories (they
are not images) and reports them in ``RecoveryReport.shardsets``; run
:func:`classify_shardsets` after it to judge the cuts, on the same root.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import InconsistentCutError, ShardError
from repro.durability.faults import FaultInjector
from repro.durability.format import (
    CHANNELS_NAME,
    SHARDSET_NAME,
    atomic_write,
    dump_json,
    fsync_dir,
    load_json,
    sha256_hex,
)
from repro.durability.store import ImageStore

#: Version of the shard-set directory layout + SHARDSET.json schema.
SHARDSET_VERSION = 1

#: Member statuses a shard can hold at the cut.
MEMBER_RUNNING = "running"  # fragment mid-flight: has a per-shard image
MEMBER_DONE = "done"  # fragment already complete: nothing to restore


def shard_image_id(gid: str, shard: int) -> str:
    """Image id of shard ``shard``'s member image in shard-set ``gid``."""
    return f"{gid}--s{shard}"


def write_shardset(
    root: str,
    gid: str,
    channels_doc: dict,
    members: list,
    meta: Optional[dict] = None,
    injector: Optional[FaultInjector] = None,
) -> str:
    """Commit the shard-set directory for ``gid``; returns its path.

    Called *after* every member image committed. Writes the channel
    state, then the shard-set manifest whose rename is the global commit
    point — a crash between the two leaves a torn shard-set and N
    stranded member images, which is exactly what recovery classifies.
    """
    if os.sep in gid or gid.startswith("."):
        raise ShardError(f"invalid shard-set id {gid!r}")
    directory = os.path.join(root, gid)
    os.makedirs(directory, exist_ok=True)
    injector = injector or FaultInjector()
    injector.point("shardset:begin")
    channels_bytes = dump_json(channels_doc)
    atomic_write(directory, CHANNELS_NAME, channels_bytes, injector)
    doc = {
        "shardset_version": SHARDSET_VERSION,
        "gid": gid,
        "num_shards": len(members),
        "members": members,
        "channels_sha256": sha256_hex(channels_bytes),
        "channels_bytes": len(channels_bytes),
        "meta": meta or {},
    }
    atomic_write(directory, SHARDSET_NAME, dump_json(doc), injector)
    fsync_dir(root)
    injector.point("shardset:committed")
    return directory


def _check_members(doc: dict, store: ImageStore) -> list:
    """Problems with a shard-set's member images ([] = all verify)."""
    problems = []
    members = doc.get("members", [])
    if len(members) != doc.get("num_shards"):
        problems.append("member list does not match num_shards")
    for member in members:
        status = member.get("status")
        if status == MEMBER_DONE:
            continue
        if status != MEMBER_RUNNING:
            problems.append(
                f"shard {member.get('shard')}: unknown status {status!r}"
            )
            continue
        image_id = member.get("image_id")
        if not image_id:
            problems.append(f"shard {member.get('shard')}: no image id")
            continue
        member_problems = store.validate(image_id)
        problems.extend(
            f"member {image_id!r}: {p}" for p in member_problems
        )
    return problems


def _load_checked(root: str, gid: str) -> tuple:
    """Parse and fully verify shard-set ``gid``; raises on any defect."""
    directory = os.path.join(root, gid)
    manifest_path = os.path.join(directory, SHARDSET_NAME)
    if not os.path.exists(manifest_path):
        raise InconsistentCutError(
            f"shard-set {gid!r} has no committed manifest — the global "
            "suspend never reached its commit point"
        )
    doc = load_json(manifest_path)
    if not isinstance(doc, dict) or doc.get("shardset_version") != SHARDSET_VERSION:
        raise InconsistentCutError(
            f"shard-set {gid!r}: unsupported or malformed manifest"
        )
    channels_path = os.path.join(directory, CHANNELS_NAME)
    try:
        with open(channels_path, "rb") as fh:
            channels_bytes = fh.read()
    except FileNotFoundError:
        raise InconsistentCutError(
            f"shard-set {gid!r}: channel state file is missing"
        ) from None
    if len(channels_bytes) != doc.get("channels_bytes") or sha256_hex(
        channels_bytes
    ) != doc.get("channels_sha256"):
        raise InconsistentCutError(
            f"shard-set {gid!r}: channel state fails its checksum"
        )
    channels_doc = load_json(channels_path)
    return doc, channels_doc


def load_shardset(store: ImageStore, gid: str) -> tuple:
    """Load a committed shard-set: ``(shardset_doc, channels_doc)``.

    Verifies the manifest, the channel-state checksum, **and** every
    member image before returning; any defect raises
    :class:`InconsistentCutError` — a shard-set is all-or-nothing.
    """
    doc, channels_doc = _load_checked(store.root, gid)
    problems = _check_members(doc, store)
    if problems:
        raise InconsistentCutError(
            f"shard-set {gid!r} is not a consistent cut: "
            + "; ".join(problems)
        )
    return doc, channels_doc


@dataclass
class ShardSetRecovery:
    """What a shard-set scan found under an image root."""

    #: Fully verified global cuts, safe to resume.
    committed: list = field(default_factory=list)
    #: gid -> reason. The cut never committed (or fails verification).
    torn: dict = field(default_factory=dict)
    #: gid -> member image ids that committed under a gid with no
    #: committed shard-set: individually valid images belonging to an
    #: aborted global suspend. Never resumable as a cut; safe to delete.
    stranded: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "committed": list(self.committed),
            "torn": dict(self.torn),
            "stranded": {k: list(v) for k, v in self.stranded.items()},
        }


def classify_shardsets(store: ImageStore) -> ShardSetRecovery:
    """Judge every shard-set under ``store.root``: committed cut or torn.

    Run after ``store.recover()`` (which quarantines torn *member*
    images and skips shard-set directories). Every gid seen — via a
    shard-set directory or via a member image's ``shard_group`` metadata
    — ends up classified: a fully verified cut is ``committed``;
    everything else is ``torn`` with a reason, and its surviving member
    images are listed ``stranded``. Nothing is guessed and nothing is
    silently resumable.
    """
    report = ShardSetRecovery()
    gids = set()
    for name in sorted(os.listdir(store.root)):
        path = os.path.join(store.root, name)
        if not os.path.isdir(path):
            continue
        entries = os.listdir(path)
        if any(e.startswith((SHARDSET_NAME, CHANNELS_NAME)) for e in entries):
            gids.add(name)
    members_by_gid: dict = {}
    for info in store.list_images():
        gid = (info.meta or {}).get("shard_group")
        if gid is not None:
            members_by_gid.setdefault(gid, []).append(info.image_id)
            gids.add(gid)
    for gid in sorted(gids):
        try:
            doc, _ = _load_checked(store.root, gid)
            problems = _check_members(doc, store)
            if problems:
                raise InconsistentCutError("; ".join(problems))
        except Exception as exc:  # classification never raises on bad content
            report.torn[gid] = str(exc)
            if gid in members_by_gid:
                report.stranded[gid] = sorted(members_by_gid[gid])
            continue
        report.committed.append(gid)
    return report
