"""Plain-text table/series rendering for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).rjust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    print(format_table(rows, columns, title))
