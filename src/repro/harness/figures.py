"""Library functions computing each paper table/figure's data series.

The benchmark files under ``benchmarks/`` and the command-line interface
(:mod:`repro.cli`) both call these, so an experiment is defined exactly
once. Every function returns plain dict-rows suitable for
:func:`repro.harness.report.format_table`.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro import QuerySession
from repro.common.errors import SuspendBudgetInfeasibleError
from repro.core.costs import build_cost_model
from repro.core.optimizer import build_lp_plan
from repro.core.strategies import Strategy
from repro.core.tree_optimizer import build_dp_plan
from repro.harness.experiments import (
    measure_suspend_overhead,
    nlj_buffer_trigger,
    run_reference_to_milestone,
    scan_position_trigger,
)
from repro.planning.cost_model import (
    Example9Scenario,
    Example10Scenario,
    hhj_costs,
    nlj_costs,
    smj_costs,
    smj_costs_presorted_inner,
)
from repro.planning.planner import (
    choose_plan_example9,
    nlj_smj_crossover_suspend_point,
)
from repro.workloads import (
    build_complex_plan,
    build_left_deep_nlj,
    build_nlj_chain,
    build_nlj_s,
    build_skewed_nlj_s,
    build_smj_s,
)

STRATEGIES = ("all_dump", "all_goback", "lp")

#: The paper's Table 2 timings (milliseconds), for side-by-side printing.
PAPER_TABLE2_MS = {
    11: 1.614,
    21: 5.846,
    41: 9.959,
    61: 20.599,
    81: 38.016,
    101: 59.060,
}


def table2_rows(plan_sizes=(11, 21, 41, 61, 81, 101)) -> list[dict]:
    """Optimizer wall-time vs plan size on left-deep NLJ chains."""
    rows = []
    for k in plan_sizes:
        db, plan = build_nlj_chain(k)
        session = QuerySession(db, plan)
        session.execute(max_rows=2)
        start = time.perf_counter()
        model = build_cost_model(session.runtime)
        build_lp_plan(model)
        elapsed_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        build_dp_plan(model)
        dp_ms = (time.perf_counter() - start) * 1000
        rows.append(
            {
                "operators": k,
                "optimize_ms": round(elapsed_ms, 3),
                "dp_ms": round(dp_ms, 3),
                "mip_variables": len(model.links),
                "paper_ms": PAPER_TABLE2_MS.get(k, "-"),
            }
        )
    return rows


def fig8_rows(
    selectivities=(0.05, 0.1, 0.2, 0.28, 0.4, 0.6, 0.8, 1.0), scale=100
) -> list[dict]:
    """NLJ_S overhead/suspend-time vs selectivity, all strategies."""
    rows = []
    for sel in selectivities:
        factory = lambda: build_nlj_s(selectivity=sel, scale=scale)
        _, plan = factory()
        trigger = nlj_buffer_trigger("nlj", plan.buffer_tuples // 2)
        db, p = factory()
        ref, _ = run_reference_to_milestone(db, p, trigger)
        row = {"selectivity": sel}
        for strategy in STRATEGIES:
            r = measure_suspend_overhead(
                factory, trigger, strategy, reference_cost=ref
            )
            row[f"{strategy}_overhead"] = round(r.total_overhead, 1)
            row[f"{strategy}_suspend"] = round(r.suspend_cost, 1)
        rows.append(row)
    return rows


def fig9_rows(
    fill_fractions=(0.1, 0.25, 0.5, 0.75, 0.95), scale=100
) -> list[dict]:
    """SMJ_S overhead vs suspend point at selectivity 0.5."""
    rows = []
    for frac in fill_fractions:
        factory = lambda: build_smj_s(selectivity=0.5, scale=scale)
        _, plan = factory()
        trigger = nlj_buffer_trigger(
            "sort_R", int(frac * plan.left.buffer_tuples)
        )
        db, p = factory()
        ref, _ = run_reference_to_milestone(db, p, trigger)
        row = {"buffer_filled": f"{int(frac * 100)}%"}
        for strategy in STRATEGIES:
            r = measure_suspend_overhead(
                factory, trigger, strategy, reference_cost=ref
            )
            row[f"{strategy}_overhead"] = round(r.total_overhead, 1)
            row[f"{strategy}_suspend"] = round(r.suspend_cost, 1)
        rows.append(row)
    return rows


def fig10_rows(
    selectivities=(0.1, 0.28, 0.6, 1.0),
    fill_fractions=(0.2, 0.5, 0.8),
    scale=200,
) -> list[dict]:
    """NLJ_S overhead surface over (selectivity x suspend point)."""
    rows = []
    for sel in selectivities:
        for frac in fill_fractions:
            factory = lambda: build_nlj_s(selectivity=sel, scale=scale)
            _, plan = factory()
            trigger = nlj_buffer_trigger(
                "nlj", max(1, int(frac * plan.buffer_tuples))
            )
            db, p = factory()
            ref, _ = run_reference_to_milestone(db, p, trigger)
            dump = measure_suspend_overhead(
                factory, trigger, "all_dump", reference_cost=ref
            )
            goback = measure_suspend_overhead(
                factory, trigger, "all_goback", reference_cost=ref
            )
            rows.append(
                {
                    "selectivity": sel,
                    "buffer_filled": f"{int(frac * 100)}%",
                    "all_dump": round(dump.total_overhead, 1),
                    "all_goback": round(goback.total_overhead, 1),
                    "winner": (
                        "goback"
                        if goback.total_overhead <= dump.total_overhead
                        else "dump"
                    ),
                }
            )
    return rows


def _plan_kind(plan) -> str:
    strategies = {d.strategy for d in plan.decisions.values()}
    return "dump" if strategies == {Strategy.DUMP} else "goback"


def fig12_rows(
    suspend_points=(4_000, 10_000, 16_000, 19_000, 23_000, 28_000),
    scale=100,
) -> list[dict]:
    """Online vs static optimizer along the skewed scan of R."""
    boundary = round(2 / 3 * (3_000_000 // scale))
    rows = []
    for point in suspend_points:
        factory = lambda: build_skewed_nlj_s(scale=scale)
        trigger = scan_position_trigger("scan_R", point)
        db, plan = factory()
        ref, _ = run_reference_to_milestone(db, plan, trigger)
        online = measure_suspend_overhead(
            factory, trigger, "lp", reference_cost=ref
        )
        static = measure_suspend_overhead(
            factory, trigger, "static", reference_cost=ref
        )
        rows.append(
            {
                "scan_position": point,
                "region_selectivity": 0.1 if point < boundary else 0.9,
                "online_overhead": round(online.total_overhead, 1),
                "online_suspend": round(online.suspend_cost, 1),
                "online_choice": _plan_kind(online.suspend_plan),
                "static_overhead": round(static.total_overhead, 1),
                "static_choice": _plan_kind(static.suspend_plan),
            }
        )
    return rows


def fig13_results(scale=100):
    """Complex-plan strategy comparison; returns (results, names)."""
    factory = lambda: build_complex_plan(scale=scale)
    _, plan = factory()
    trigger = nlj_buffer_trigger("nlj0", int(0.85 * plan.buffer_tuples))
    db, p = factory()
    ref, _ = run_reference_to_milestone(db, p, trigger)
    results = {
        strategy: measure_suspend_overhead(
            factory, trigger, strategy, reference_cost=ref
        )
        for strategy in STRATEGIES
    }
    db2, p2 = factory()
    session = QuerySession(db2, p2)
    session.execute(suspend_when=trigger)
    return results, session.operator_names()


def fig14_rows(
    budgets=(1.0, 10.0, 25.0, 60.0, 120.0, 250.0, math.inf), scale=100
) -> list[dict]:
    """Left-deep 3-NLJ plan: overhead vs suspend budget."""
    factory = lambda: build_left_deep_nlj(scale=scale)
    trigger = nlj_buffer_trigger("nlj2", int(0.85 * 200_000 / scale))
    db, plan = factory()
    ref, _ = run_reference_to_milestone(db, plan, trigger)
    rows = []
    for budget in budgets:
        label = "unlimited" if budget == math.inf else budget
        try:
            r = measure_suspend_overhead(
                factory, trigger, "lp", budget=budget, reference_cost=ref
            )
        except SuspendBudgetInfeasibleError:
            rows.append(
                {
                    "budget": label,
                    "total_overhead": "infeasible",
                    "suspend_time": "-",
                }
            )
            continue
        rows.append(
            {
                "budget": label,
                "total_overhead": round(r.total_overhead, 1),
                "suspend_time": round(r.suspend_cost, 1),
            }
        )
    return rows


def fig15_rows():
    """Example 9's HHJ-vs-SMJ I/O table; returns (rows, choice)."""
    sc = Example9Scenario()
    choice = choose_plan_example9(sc)
    rows = [
        {
            "plan": c.plan,
            "io_no_suspend": round(c.run_io),
            "suspend_overhead_io": round(c.suspend_overhead_io),
            "io_with_suspend": round(c.total_with_suspend),
        }
        for c in (hhj_costs(sc), smj_costs(sc))
    ]
    return rows, choice


def ex10_rows(
    suspend_points=(0, 10_000, 16_020, 30_000, 45_000, 80_000),
):
    """Example 10's NLJ-vs-SMJ table; returns (rows, crossover)."""
    sc = Example10Scenario()
    smj = smj_costs_presorted_inner(sc)
    rows = []
    for fill in suspend_points:
        nlj = nlj_costs(sc, suspend_at_buffer_fill=fill)
        rows.append(
            {
                "buffer_fill": fill,
                "nlj_total_io": round(nlj.total_with_suspend),
                "smj_total_io": round(smj.total_with_suspend),
                "winner": (
                    "NLJ"
                    if nlj.total_with_suspend < smj.total_with_suspend
                    else "SMJ"
                ),
            }
        )
    return rows, nlj_smj_crossover_suspend_point(sc)
