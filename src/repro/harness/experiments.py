"""Measuring suspend/resume overhead the way the paper does.

The two metrics of Section 6:

- *Total overhead time* — "the total amount of extra work done due to
  query suspend and resume". Measured here as the difference in simulated
  cost between (a) a run that suspends at the trigger, resumes, and
  continues to a milestone, and (b) an uninterrupted reference run to the
  same milestone. After the milestone both executions are identical, so
  the difference is exactly the extra work (suspend cost + resume cost +
  redone work - skipped work).
- *Total suspend time* — the simulated cost of the suspend phase alone
  (what the system pays before all resources are released).

The milestone is "the first root output tuple after the suspend point"
(or query completion when no such tuple exists), which keeps experiment
runtime small without altering either metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import LifecycleError
from repro.core.lifecycle import (
    QuerySession,
    QueryStatus,
    SuspendSpec,
    SuspendStrategy,
)
from repro.core.strategies import SuspendPlan
from repro.engine.config import EngineConfig
from repro.engine.plan import PlanSpec
from repro.engine.runtime import Runtime
from repro.storage.database import Database

Trigger = Callable[[Runtime], bool]
WorkloadFactory = Callable[[], tuple[Database, PlanSpec]]


@dataclass
class OverheadResult:
    """Outcome of one suspend/resume overhead measurement."""

    strategy: str
    suspend_cost: float
    resume_cost: float
    total_overhead: float
    reference_cost: float
    suspend_plan: SuspendPlan
    rows_before_suspend: int

    def as_row(self) -> dict:
        return {
            "strategy": self.strategy,
            "suspend": round(self.suspend_cost, 2),
            "resume": round(self.resume_cost, 2),
            "total_overhead": round(self.total_overhead, 2),
        }


def run_reference_to_milestone(
    db: Database,
    plan: PlanSpec,
    trigger: Trigger,
    milestone_rows: int = 1,
    config: Optional[EngineConfig] = None,
) -> tuple[float, int]:
    """Cost of an uninterrupted run to the milestone.

    Returns (simulated cost, rows produced up to the suspend point).
    """
    session = QuerySession(db, plan, config=config)
    start = db.now
    session.execute(suspend_when=trigger)
    rows_at_point = len(session.rows)
    if session.status is QueryStatus.SUSPEND_PENDING:
        session.status = QueryStatus.RUNNING
        session.execute(max_rows=milestone_rows)
    return db.now - start, rows_at_point


def measure_suspend_overhead(
    factory: WorkloadFactory,
    trigger: Trigger,
    strategy: str,
    budget: float = math.inf,
    milestone_rows: int = 1,
    config: Optional[EngineConfig] = None,
    reference_cost: Optional[float] = None,
) -> OverheadResult:
    """Measure suspend time and total overhead for one strategy.

    ``factory`` must return a *fresh* database and plan each call so the
    reference and experiment runs see identical physical state.
    ``reference_cost`` may be passed to reuse a previously measured
    reference (the factory must then be deterministic).
    """
    if reference_cost is None:
        db_ref, plan_ref = factory()
        reference_cost, _ = run_reference_to_milestone(
            db_ref, plan_ref, trigger, milestone_rows, config
        )

    db, plan = factory()
    session = QuerySession(db, plan, config=config)
    start = db.now
    result = session.execute(suspend_when=trigger)
    rows_before = len(session.rows)
    if session.status is not QueryStatus.SUSPEND_PENDING:
        raise LifecycleError(
            "suspend trigger never fired; the query ran to completion"
        )
    before_suspend = db.now
    sq = session.suspend(
        SuspendSpec(strategy=SuspendStrategy(strategy), budget=budget)
    )
    suspend_cost = db.now - before_suspend

    before_resume = db.now
    resumed = QuerySession.resume(db, sq, config=config)
    resume_cost = db.now - before_resume
    resumed.execute(max_rows=milestone_rows)
    total_cost = db.now - start

    return OverheadResult(
        strategy=strategy,
        suspend_cost=suspend_cost,
        resume_cost=resume_cost,
        total_overhead=total_cost - reference_cost,
        reference_cost=reference_cost,
        suspend_plan=sq.suspend_plan,
        rows_before_suspend=rows_before,
    )


def nlj_buffer_trigger(op_name: str, fill: int) -> Trigger:
    """Suspend when an NLJ/sort buffer reaches ``fill`` tuples."""

    def trigger(rt: Runtime) -> bool:
        return rt.op_named(op_name).buffer_fill() >= fill

    return trigger


def scan_position_trigger(op_name: str, tuples: int) -> Trigger:
    """Suspend when a table scan has consumed ``tuples`` base tuples."""

    def trigger(rt: Runtime) -> bool:
        return rt.op_named(op_name).tuples_consumed() >= tuples

    return trigger


def root_rows_trigger(op_name: str, rows: int) -> Trigger:
    """Suspend when an operator has emitted ``rows`` tuples."""

    def trigger(rt: Runtime) -> bool:
        return rt.op_named(op_name).tuples_emitted >= rows

    return trigger
