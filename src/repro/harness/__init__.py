"""Experiment harness regenerating the paper's tables and figures."""

from repro.harness.experiments import (
    OverheadResult,
    measure_suspend_overhead,
    run_reference_to_milestone,
)
from repro.harness.report import format_table, print_table
from repro.harness.scheduling import (
    DEFAULT_POLICIES,
    compare_policies,
    policy_comparison_rows,
)

__all__ = [
    "DEFAULT_POLICIES",
    "OverheadResult",
    "compare_policies",
    "format_table",
    "measure_suspend_overhead",
    "policy_comparison_rows",
    "print_table",
    "run_reference_to_milestone",
]
