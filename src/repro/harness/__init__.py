"""Experiment harness regenerating the paper's tables and figures."""

from repro.harness.experiments import (
    OverheadResult,
    measure_suspend_overhead,
    run_reference_to_milestone,
)
from repro.harness.report import format_table, print_table

__all__ = [
    "OverheadResult",
    "format_table",
    "measure_suspend_overhead",
    "print_table",
    "run_reference_to_milestone",
]
