"""Policy-comparison harness for the scheduler (Section 1 as a table).

``compare_policies`` replays one :class:`~repro.service.trace.Workload`
under each pressure policy on identical fresh databases and returns the
full per-policy stats; ``policy_comparison_rows`` flattens them into the
dict-rows the report tables and the CLI print. The ranking metric is
``total_turnaround`` — for the two-query mixed trace exactly Q_hi
latency + Q_lo turnaround, the combined quantity the paper's motivating
argument is about.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.service.scheduler import QueryScheduler, SchedulerConfig
from repro.service.stats import SchedulerStats
from repro.service.trace import Workload

#: The Section 1 policies, in the order the paper discusses them.
DEFAULT_POLICIES = ("suspend-resume", "kill-restart", "wait")


def compare_policies(
    workload: Workload,
    policies: Sequence[str] = DEFAULT_POLICIES,
    quantum_rows: Optional[int] = None,
    fold: bool = False,
) -> dict[str, SchedulerStats]:
    """Replay ``workload`` once per policy; return stats keyed by policy."""
    results: dict[str, SchedulerStats] = {}
    for policy in policies:
        config = SchedulerConfig(
            policy=policy,
            memory_budget=workload.memory_budget,
            suspend=workload.suspend_spec(),
            fold=fold,
        )
        if quantum_rows is not None:
            config.quantum_rows = quantum_rows
        results[policy] = QueryScheduler.run_workload(workload, config=config)
    return results


def policy_comparison_rows(
    results: dict[str, SchedulerStats]
) -> list[dict]:
    """One report row per policy, best (lowest total turnaround) first."""
    rows = []
    for stats in results.values():
        row = stats.as_dict()
        hi = _highest_priority_query(stats)
        if hi is not None:
            row["hi_latency"] = (
                None if hi.turnaround is None else round(hi.turnaround, 2)
            )
        rows.append(row)
    rows.sort(key=lambda r: r["total_turnaround"])
    return rows


def _highest_priority_query(stats: SchedulerStats):
    queries = list(stats.per_query.values())
    if not queries:
        return None
    return max(queries, key=lambda q: (q.priority, -q.arrival_time))
