"""Stable serialization codecs for suspend images.

Everything a :class:`~repro.core.suspended_query.SuspendedQuery` carries —
the plan-spec tree, the suspend plan, per-operator entries, control-state
dicts, checkpoint payloads, saved rows — is turned into plain
JSON-compatible data here, and back. The encoding is *tagged*: values JSON
cannot represent faithfully (tuples, non-string dict keys, frozensets,
:class:`~repro.storage.statefile.DumpHandle` references, the registered
spec/predicate dataclasses) become ``{"$t": <tag>, ...}`` objects. Plain
strings, numbers, booleans, ``None``, lists, and string-keyed dicts pass
through untouched, so the files stay human-readable.

``DumpHandle`` values are encoded as ``(key, pages)`` references only —
their payloads are written as separate image blobs and re-homed into the
resuming process's :class:`~repro.storage.statefile.StateStore` via the
existing migration machinery (``SuspendedQuery.import_payloads``), which
charges the simulated-disk writes on the receiving side.

The registries below are the compatibility surface of the on-disk format:
renaming a spec or predicate class breaks old images, which is why
:data:`FORMAT_VERSION` exists and is checked on load.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.common.errors import ReproError
from repro.core.strategies import OpDecision, Strategy, SuspendPlan
from repro.core.suspended_query import OpSuspendEntry, SuspendedQuery
from repro.engine import plan as plan_module
from repro.relational import expressions as expr_module
from repro.storage.statefile import DumpHandle

#: Version of the image encoding. Bump on any incompatible change to the
#: tagged encoding, the registries, or the record layouts below.
FORMAT_VERSION = 1


class CodecError(ReproError):
    """Raised when a value cannot be encoded or decoded."""


def _registered_dataclasses() -> dict[str, type]:
    """Spec and predicate dataclasses allowed inside images, by name."""
    classes: dict[str, type] = {}
    for module in (plan_module, expr_module):
        for name in dir(module):
            obj = getattr(module, name)
            if isinstance(obj, type) and dataclasses.is_dataclass(obj):
                classes[obj.__name__] = obj
    return classes


_DATACLASSES = _registered_dataclasses()

_SCALARS = (str, int, float, bool, type(None))


def encode_value(value: Any) -> Any:
    """Encode an arbitrary image value into JSON-compatible data."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, DumpHandle):
        return {"$t": "handle", "key": value.key, "pages": value.pages}
    if isinstance(value, tuple):
        return {"$t": "tuple", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, frozenset):
        return {"$t": "frozenset", "v": sorted_encoded(value)}
    if isinstance(value, set):
        return {"$t": "set", "v": sorted_encoded(value)}
    if isinstance(value, dict):
        if all(
            isinstance(k, str) and not k.startswith("$") for k in value
        ):
            return {k: encode_value(v) for k, v in value.items()}
        return {
            "$t": "dict",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    cls = type(value)
    if dataclasses.is_dataclass(value) and cls.__name__ in _DATACLASSES:
        fields = {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"$t": "obj", "cls": cls.__name__, "fields": fields}
    raise CodecError(
        f"cannot encode value of type {cls.__name__!r} into an image"
    )


def sorted_encoded(values) -> list:
    """Encode set members in a deterministic order (stable checksums)."""
    encoded = [encode_value(v) for v in values]
    return sorted(encoded, key=repr)


def decode_value(data: Any) -> Any:
    """Decode data produced by :func:`encode_value`.

    Decoded ``DumpHandle`` references carry ``store_id=-1``: they resolve
    to real payloads only after ``SuspendedQuery.import_payloads`` re-homes
    them into a live state store.
    """
    if isinstance(data, _SCALARS):
        return data
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if isinstance(data, dict):
        tag = data.get("$t")
        if tag is None:
            return {k: decode_value(v) for k, v in data.items()}
        if tag == "handle":
            return DumpHandle(
                store_id=-1, key=data["key"], pages=data["pages"]
            )
        if tag == "tuple":
            return tuple(decode_value(v) for v in data["v"])
        if tag == "frozenset":
            return frozenset(decode_value(v) for v in data["v"])
        if tag == "set":
            return set(decode_value(v) for v in data["v"])
        if tag == "dict":
            return {
                decode_value(k): decode_value(v) for k, v in data["v"]
            }
        if tag == "obj":
            cls = _DATACLASSES.get(data["cls"])
            if cls is None:
                raise CodecError(
                    f"image references unknown class {data['cls']!r}"
                )
            fields = {
                name: decode_value(v) for name, v in data["fields"].items()
            }
            return cls(**fields)
        raise CodecError(f"unknown value tag {tag!r}")
    raise CodecError(f"cannot decode value {data!r}")


# ----------------------------------------------------------------------
# Plan specs
# ----------------------------------------------------------------------
def spec_to_dict(spec) -> dict:
    """Encode a plan-spec tree (a registered spec dataclass)."""
    encoded = encode_value(spec)
    if not (isinstance(encoded, dict) and encoded.get("$t") == "obj"):
        raise CodecError(f"not a plan spec: {type(spec).__name__}")
    return encoded


def spec_from_dict(data: dict):
    """Decode a plan-spec tree encoded by :func:`spec_to_dict`."""
    spec = decode_value(data)
    if not dataclasses.is_dataclass(spec):
        raise CodecError("decoded plan spec is not a spec dataclass")
    return spec


# ----------------------------------------------------------------------
# Suspend plans
# ----------------------------------------------------------------------
def suspend_plan_to_dict(plan: SuspendPlan) -> dict:
    decisions = []
    for op_id in sorted(plan.decisions):
        d = plan.decisions[op_id]
        decisions.append(
            {
                "op": op_id,
                "strategy": d.strategy.value,
                "anchor": d.goback_anchor,
                "dump_children": list(d.dump_children),
            }
        )
    return {"source": plan.source, "decisions": decisions}


def suspend_plan_from_dict(data: dict) -> SuspendPlan:
    decisions: dict[int, OpDecision] = {}
    for item in data["decisions"]:
        decisions[item["op"]] = OpDecision(
            strategy=Strategy(item["strategy"]),
            goback_anchor=item["anchor"],
            dump_children=tuple(item.get("dump_children", ())),
        )
    return SuspendPlan(decisions=decisions, source=data.get("source", "manual"))


# ----------------------------------------------------------------------
# Per-operator suspend entries
# ----------------------------------------------------------------------
def entry_to_dict(entry: OpSuspendEntry) -> dict:
    return {
        "op": entry.op_id,
        "kind": entry.kind,
        "target_control": encode_value(entry.target_control),
        "ckpt_payload": (
            None
            if entry.ckpt_payload is None
            else encode_value(entry.ckpt_payload)
        ),
        "dump_handle": (
            None
            if entry.dump_handle is None
            else encode_value(entry.dump_handle)
        ),
        "current_control": (
            None
            if entry.current_control is None
            else encode_value(entry.current_control)
        ),
        "saved_rows": encode_value(list(entry.saved_rows)),
    }


def entry_from_dict(data: dict) -> OpSuspendEntry:
    return OpSuspendEntry(
        op_id=data["op"],
        kind=data["kind"],
        target_control=decode_value(data["target_control"]),
        ckpt_payload=(
            None
            if data["ckpt_payload"] is None
            else decode_value(data["ckpt_payload"])
        ),
        dump_handle=(
            None
            if data["dump_handle"] is None
            else decode_value(data["dump_handle"])
        ),
        current_control=(
            None
            if data["current_control"] is None
            else decode_value(data["current_control"])
        ),
        saved_rows=decode_value(data["saved_rows"]),
    )


# ----------------------------------------------------------------------
# The SuspendedQuery control record
# ----------------------------------------------------------------------
def suspended_query_to_dict(sq: SuspendedQuery) -> dict:
    """Encode the control record (dump payloads travel as image blobs)."""
    return {
        "format_version": FORMAT_VERSION,
        "plan_spec": spec_to_dict(sq.plan_spec),
        "suspend_plan": suspend_plan_to_dict(sq.suspend_plan),
        "entries": [
            entry_to_dict(sq.entries[op_id]) for op_id in sorted(sq.entries)
        ],
        "root_rows_emitted": sq.root_rows_emitted,
        "suspended_at": sq.suspended_at,
        "query_clock": sq.query_clock,
    }


def suspended_query_from_dict(data: dict) -> SuspendedQuery:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise CodecError(
            f"unsupported image format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    sq = SuspendedQuery(
        plan_spec=spec_from_dict(data["plan_spec"]),
        suspend_plan=suspend_plan_from_dict(data["suspend_plan"]),
        root_rows_emitted=data["root_rows_emitted"],
        suspended_at=data["suspended_at"],
        query_clock=data.get("query_clock", data["suspended_at"]),
    )
    for item in data["entries"]:
        sq.add_entry(entry_from_dict(item))
    return sq
