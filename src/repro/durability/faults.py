"""Fault injection for the durable-image commit protocol.

The image writer threads every file operation through a
:class:`FaultInjector`, which can simulate a process crash at any named
*crash point* or a *torn write* (a partial file left behind by a crash
mid-``write``). A crash is modeled as :class:`InjectedCrash` unwinding out
of the writer: the files already durable stay exactly as a real crash
would leave them, and nothing is cleaned up.

The same injector doubles as a *recorder*: a clean run with a default
injector logs every crash point and every torn-write opportunity it
passed, which is how the fault harness enumerates the full matrix without
hard-coding the commit protocol's step list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import ReproError


class InjectedCrash(ReproError):
    """The injected process crash: unwinds out of the image writer."""

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class FaultInjector:
    """Crash-point hooks and torn-write injection for image writes.

    Attributes:
        crash_points: crash-point names at which to raise
            :class:`InjectedCrash` (e.g. ``"written:control"``).
        torn_points: file labels whose *next* write is torn: only a prefix
            of the bytes reaches the file before the injected crash.
        observed_points: every crash point passed, in order (recorder).
        observed_torn: every file label that offered a torn write.
    """

    crash_points: set[str] = field(default_factory=set)
    torn_points: set[str] = field(default_factory=set)
    observed_points: list[str] = field(default_factory=list)
    observed_torn: list[str] = field(default_factory=list)

    @classmethod
    def crashing_at(cls, point: str) -> "FaultInjector":
        return cls(crash_points={point})

    @classmethod
    def tearing(cls, label: str) -> "FaultInjector":
        return cls(torn_points={label})

    def point(self, name: str) -> None:
        """Pass a crash point: record it, crash if configured to."""
        self.observed_points.append(name)
        if name in self.crash_points:
            raise InjectedCrash(name)

    def wants_torn(self, label: str) -> bool:
        """Record a torn-write opportunity; True if it should be taken."""
        self.observed_torn.append(label)
        return label in self.torn_points


def crash_variants(points: Iterable[str]) -> list[FaultInjector]:
    """One crashing injector per observed point (harness helper)."""
    return [FaultInjector.crashing_at(p) for p in dict.fromkeys(points)]


def torn_variants(labels: Iterable[str]) -> list[FaultInjector]:
    """One tearing injector per observed file label (harness helper)."""
    return [FaultInjector.tearing(lb) for lb in dict.fromkeys(labels)]
