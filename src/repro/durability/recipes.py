"""Deterministic (database, plan) recipes for durable-image round trips.

A suspend image carries the query's *state*, not the base tables — exactly
like a real DBMS checkpoint, which assumes the database itself survives
independently. To resume an image in a different process, that process
must rebuild the same database. A *recipe* makes this reproducible: a
named builder that, given ``(scale, seed)``, constructs bit-identical base
tables and the plan spec to run over them. The CLI stamps the recipe name
and parameters into the image's metadata so ``repro resume-image`` can
rebuild the matching database in a fresh interpreter.

The registry deliberately covers the three stateful operator families —
external sort, hash join, hash aggregation — plus the paper's block-NLJ
and sort-merge shapes, so cross-process tests exercise every kind of
suspendable heap state.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.plan import (
    FilterSpec,
    HashGroupAggSpec,
    MergeJoinSpec,
    NLJSpec,
    PlanSpec,
    ScanSpec,
    SimpleHashJoinSpec,
    SortSpec,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect
from repro.storage.database import Database


def _scaled(value: int, scale: int) -> int:
    return max(4, value // scale)


def build_sort(scale: int = 1, seed: int = 31) -> tuple[Database, PlanSpec]:
    """External sort over a filtered scan; the small buffer forces the
    two-phase path, so the image carries sublist dump handles."""
    db = Database()
    n = _scaled(900, scale)
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(n, seed=seed))
    db.catalog.set_predicate_selectivity("R", "uniform", 0.6)
    plan = SortSpec(
        FilterSpec(
            ScanSpec("R", label="scan_R"),
            UniformSelect(1, 0.6),
            label="filter",
        ),
        key_columns=(0,),
        buffer_tuples=_scaled(120, scale),
        label="sort",
    )
    return db, plan


def build_hashjoin(scale: int = 1, seed: int = 37) -> tuple[Database, PlanSpec]:
    """Simple (Grace-style) hash join; the image carries partition state."""
    db = Database()
    build_n = _scaled(400, scale)
    probe_n = _scaled(600, scale)
    db.create_table("B", BASE_SCHEMA, generate_uniform_table(build_n, seed=seed))
    db.create_table(
        "P", BASE_SCHEMA, generate_uniform_table(probe_n, seed=seed + 1)
    )
    plan = SimpleHashJoinSpec(
        build=ScanSpec("B", label="scan_B"),
        probe=ScanSpec("P", label="scan_P"),
        condition=EquiJoinCondition(0, 0, modulus=64),
        num_partitions=4,
        label="hj",
    )
    return db, plan


def build_hashagg(scale: int = 1, seed: int = 41) -> tuple[Database, PlanSpec]:
    """Hash aggregation over a table with repeated group keys."""
    db = Database()
    n = _scaled(800, scale)
    groups = 16
    rows = [
        (i % groups, u, payload)
        for (i, (_, u, payload)) in enumerate(
            generate_uniform_table(n, seed=seed)
        )
    ]
    db.create_table("G", BASE_SCHEMA, rows)
    plan = HashGroupAggSpec(
        ScanSpec("G", label="scan_G"),
        group_columns=(0,),
        agg_func="sum",
        agg_column=2,
        num_partitions=4,
        label="hagg",
    )
    return db, plan


def build_nlj(scale: int = 1, seed: int = 43) -> tuple[Database, PlanSpec]:
    """Block NLJ with a mid-size outer buffer (the paper's NLJ_S shape)."""
    db = Database()
    outer_n = _scaled(600, scale)
    inner_n = _scaled(150, scale)
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(outer_n, seed=seed))
    db.create_table(
        "T", BASE_SCHEMA, generate_uniform_table(inner_n, seed=seed + 1)
    )
    db.catalog.set_predicate_selectivity("R", "uniform", 0.5)
    plan = NLJSpec(
        outer=FilterSpec(
            ScanSpec("R", label="scan_R"),
            UniformSelect(1, 0.5),
            label="filter",
        ),
        inner=ScanSpec("T", label="scan_T"),
        condition=EquiJoinCondition(0, 0, modulus=40),
        buffer_tuples=_scaled(100, scale),
        label="nlj",
    )
    return db, plan


def build_smj(scale: int = 1, seed: int = 47) -> tuple[Database, PlanSpec]:
    """Sort-merge join (the paper's SMJ_S shape), two external sorts."""
    db = Database()
    n = _scaled(500, scale)
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(n, seed=seed))
    db.create_table("T", BASE_SCHEMA, generate_uniform_table(n, seed=seed + 1))
    buffer = _scaled(90, scale)
    plan = MergeJoinSpec(
        left=SortSpec(
            ScanSpec("R", label="scan_R"),
            key_columns=(0,),
            buffer_tuples=buffer,
            label="sort_R",
        ),
        right=SortSpec(
            ScanSpec("T", label="scan_T"),
            key_columns=(0,),
            buffer_tuples=buffer,
            label="sort_T",
        ),
        condition=EquiJoinCondition(0, 0),
        label="mj",
    )
    return db, plan


#: Recipe registry: name -> builder(scale, seed) -> (db, plan).
RECIPES: dict[str, Callable[..., tuple[Database, PlanSpec]]] = {
    "sort": build_sort,
    "hashjoin": build_hashjoin,
    "hashagg": build_hashagg,
    "nlj": build_nlj,
    "smj": build_smj,
}


def build_recipe(
    name: str, scale: int = 1, seed: int = 0
) -> tuple[Database, PlanSpec]:
    """Build a registered recipe; ``seed=0`` means the recipe default."""
    if name not in RECIPES:
        raise KeyError(
            f"unknown recipe {name!r} (have: {', '.join(sorted(RECIPES))})"
        )
    builder = RECIPES[name]
    if seed:
        return builder(scale=scale, seed=seed)
    return builder(scale=scale)
