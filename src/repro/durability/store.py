"""The ImageStore: durable suspend images under one root directory.

Where the in-memory :class:`~repro.storage.statefile.StateStore` keeps
dump payloads as Python objects behind the *simulated* disk, the
ImageStore writes a complete, self-contained suspend image to *real*
files so a suspended query can outlive its process — the paper's grid
migration, rolling upgrade, and scheduled-maintenance scenarios.

Responsibilities:

- :meth:`ImageStore.save` — export every payload a SuspendedQuery
  references, encode the control record, and commit the image with the
  atomic manifest protocol of :mod:`repro.durability.format`;
- :meth:`ImageStore.load` — verify checksums and reconstruct the
  SuspendedQuery with its payloads staged for import (the existing
  migration path charges the simulated-disk writes on resume, so cost
  accounting survives the process boundary);
- :meth:`ImageStore.recover` — the startup scan: classify every entry
  under the root as committed, torn, or orphaned, and quarantine the bad
  ones instead of crashing;
- :meth:`ImageStore.list_images` / :meth:`validate` / :meth:`delete` /
  :meth:`gc` — inventory management.
"""

from __future__ import annotations

import os
import shutil
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ReproError
from repro.core.suspended_query import SuspendedQuery
from repro.durability import codec
from repro.durability.faults import FaultInjector
from repro.obs.tracer import NULL_TRACER
from repro.durability.format import (
    BLOB_PREFIX,
    CONTROL_NAME,
    LAYOUT_VERSION,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    TMP_SUFFIX,
    ImageFormatError,
    atomic_write,
    blob_filename,
    dump_json,
    fsync_dir,
    is_image_file,
    load_json,
    read_file_checked,
    sha256_hex,
    validate_manifest_dict,
)
from repro.storage.statefile import StateStore


class ImageNotFoundError(ReproError):
    """Raised when an image id does not name a committed image."""


@dataclass(frozen=True)
class ImageInfo:
    """Summary of one committed image."""

    image_id: str
    path: str
    created_at: float
    meta: dict
    num_blobs: int
    blob_pages: int
    total_bytes: int

    def as_dict(self) -> dict:
        return {
            "image_id": self.image_id,
            "path": self.path,
            "created_at": self.created_at,
            "meta": self.meta,
            "num_blobs": self.num_blobs,
            "blob_pages": self.blob_pages,
            "total_bytes": self.total_bytes,
        }


@dataclass
class RecoveryReport:
    """What the startup scan found under an image root."""

    committed: list[str] = field(default_factory=list)
    torn: list[str] = field(default_factory=list)
    orphaned: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "committed": list(self.committed),
            "torn": list(self.torn),
            "orphaned": list(self.orphaned),
            "quarantined": list(self.quarantined),
        }


class ImageStore:
    """Durable suspend images under ``root``, one directory per image."""

    def __init__(
        self, root: str, injector: Optional[FaultInjector] = None
    ):
        self.root = os.fspath(root)
        self.injector = injector or FaultInjector()
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        sq: SuspendedQuery,
        store: StateStore,
        image_id: Optional[str] = None,
        meta: Optional[dict] = None,
        tracer=None,
    ) -> ImageInfo:
        """Commit a suspend image; returns its :class:`ImageInfo`.

        Payloads are exported from ``store`` without extra simulated-disk
        charges — their page writes were already paid when they were
        dumped, and the image is the durable representation of that same
        simulated disk. The commit order is blobs, control record,
        manifest; the manifest rename is the commit point.
        """
        image_id = image_id or f"img-{uuid.uuid4().hex[:12]}"
        if os.sep in image_id or image_id.startswith("."):
            raise ValueError(f"invalid image id {image_id!r}")
        directory = os.path.join(self.root, image_id)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise ValueError(f"image {image_id!r} already exists")
        tracer = tracer if tracer is not None else NULL_TRACER
        injector = self.injector
        injector.point("begin")
        os.makedirs(directory, exist_ok=True)

        commit_start = tracer.now()
        files: dict[str, dict] = {}
        blobs: list[dict] = []
        total = 0
        handles = sq.referenced_handles()
        blob_pages = 0
        for index, key in enumerate(sorted(handles)):
            handle = handles[key]
            payload, pages = store.export_payload(handle)
            name = blob_filename(index)
            data = dump_json(
                {"key": key, "pages": pages, "payload": codec.encode_value(payload)}
            )
            atomic_write(directory, name, data, injector)
            files[name] = {"sha256": sha256_hex(data), "bytes": len(data)}
            blobs.append({"file": name, "key": key, "pages": pages})
            blob_pages += pages
            total += len(data)
        if tracer.enabled:
            tracer.event(
                "image.commit_step",
                image_id=image_id,
                step="blobs",
                files=len(blobs),
                pages=blob_pages,
            )

        control = dump_json(codec.suspended_query_to_dict(sq))
        atomic_write(directory, CONTROL_NAME, control, injector)
        files[CONTROL_NAME] = {
            "sha256": sha256_hex(control),
            "bytes": len(control),
        }
        total += len(control)
        if tracer.enabled:
            tracer.event(
                "image.commit_step",
                image_id=image_id,
                step="control",
                bytes=len(control),
            )

        manifest = {
            "layout_version": LAYOUT_VERSION,
            "format_version": codec.FORMAT_VERSION,
            "image_id": image_id,
            "created_at": time.time(),
            "meta": dict(meta or {}),
            "control_file": CONTROL_NAME,
            "files": files,
            "blobs": blobs,
        }
        data = dump_json(manifest)
        atomic_write(directory, MANIFEST_NAME, data, injector)
        fsync_dir(self.root)
        injector.point("committed")
        if tracer.enabled:
            # payload_bytes excludes the manifest: its wall-clock
            # created_at makes the manifest length vary between runs,
            # and trace records must stay byte-deterministic.
            tracer.event(
                "image.commit",
                ts=commit_start,
                dur=round(tracer.now() - commit_start, 6),
                image_id=image_id,
                num_blobs=len(blobs),
                blob_pages=blob_pages,
                payload_bytes=total,
            )
            metrics = tracer.metrics
            metrics.counter("image_commits_total").inc()
            metrics.counter("image_payload_bytes_total").inc(total)
        return ImageInfo(
            image_id=image_id,
            path=directory,
            created_at=manifest["created_at"],
            meta=manifest["meta"],
            num_blobs=len(blobs),
            blob_pages=blob_pages,
            total_bytes=total + len(data),
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _image_dir(self, image_id: str) -> str:
        return os.path.join(self.root, image_id)

    def manifest(self, image_id: str) -> dict:
        """Parse and structurally validate an image's manifest."""
        path = os.path.join(self._image_dir(image_id), MANIFEST_NAME)
        if not os.path.exists(path):
            raise ImageNotFoundError(f"no committed image {image_id!r}")
        manifest = load_json(path)
        validate_manifest_dict(manifest)
        return manifest

    def load(self, image_id: str) -> SuspendedQuery:
        """Verify and decode an image into a resumable SuspendedQuery.

        Every file is checksum-verified before anything is decoded. The
        returned structure has its dump payloads staged in
        ``migrated_payloads``; ``QuerySession.resume`` imports them into
        the target database's state store, charging the page writes there
        exactly as a migration to a replica would.
        """
        manifest = self.manifest(image_id)
        directory = self._image_dir(image_id)
        control_data = read_file_checked(
            directory, manifest["control_file"], manifest
        )
        record = load_json(
            os.path.join(directory, manifest["control_file"])
        )
        del control_data  # checksum verified above; reparse for clarity
        sq = codec.suspended_query_from_dict(record)
        payloads: dict = {}
        for blob in manifest["blobs"]:
            data = read_file_checked(directory, blob["file"], manifest)
            decoded = load_json(os.path.join(directory, blob["file"]))
            if decoded["key"] != blob["key"] or decoded["pages"] != blob["pages"]:
                raise ImageFormatError(
                    f"blob {blob['file']!r} does not match its manifest entry"
                )
            payloads[blob["key"]] = (
                codec.decode_value(decoded["payload"]),
                blob["pages"],
            )
            del data
        sq.migrated_payloads = payloads
        return sq

    def info(self, image_id: str) -> ImageInfo:
        manifest = self.manifest(image_id)
        directory = self._image_dir(image_id)
        total = sum(e["bytes"] for e in manifest["files"].values())
        total += os.path.getsize(os.path.join(directory, MANIFEST_NAME))
        return ImageInfo(
            image_id=manifest["image_id"],
            path=directory,
            created_at=manifest.get("created_at", 0.0),
            meta=manifest.get("meta", {}),
            num_blobs=len(manifest["blobs"]),
            blob_pages=sum(b["pages"] for b in manifest["blobs"]),
            total_bytes=total,
        )

    def list_images(self) -> list[ImageInfo]:
        """Every committed image under the root, oldest first."""
        infos = []
        for name in sorted(os.listdir(self.root)):
            if name == QUARANTINE_DIR:
                continue
            if os.path.exists(
                os.path.join(self.root, name, MANIFEST_NAME)
            ):
                try:
                    infos.append(self.info(name))
                except (ImageFormatError, ReproError):
                    continue  # recover() deals with bad manifests
        infos.sort(key=lambda i: (i.created_at, i.image_id))
        return infos

    def validate(self, image_id: str) -> list[str]:
        """Full verification; returns a list of problems (empty = ok)."""
        problems: list[str] = []
        try:
            manifest = self.manifest(image_id)
        except ImageNotFoundError:
            return [f"image {image_id!r} not found"]
        except ImageFormatError as exc:
            return [str(exc)]
        directory = self._image_dir(image_id)
        for name in manifest["files"]:
            try:
                read_file_checked(directory, name, manifest)
            except ImageFormatError as exc:
                problems.append(str(exc))
        for name in os.listdir(directory):
            if name == MANIFEST_NAME:
                continue
            if name not in manifest["files"]:
                problems.append(f"unmanifested file {name!r} in image")
        return problems

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def delete(self, image_id: str) -> None:
        directory = self._image_dir(image_id)
        if not os.path.isdir(directory):
            raise ImageNotFoundError(f"no image directory {image_id!r}")
        shutil.rmtree(directory)
        fsync_dir(self.root)

    def gc(self, keep: Optional[set] = None) -> list[str]:
        """Delete committed images not in ``keep``; returns deleted ids."""
        keep = keep or set()
        deleted = []
        for info in self.list_images():
            if info.image_id not in keep:
                self.delete(info.image_id)
                deleted.append(info.image_id)
        return deleted

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------
    def recover(self, tracer=None) -> RecoveryReport:
        """Classify every root entry; quarantine torn/orphaned ones.

        - *committed*: a directory whose manifest parses and whose files
          all verify — safe to resume from;
        - *torn*: an interrupted or corrupted commit — a directory with
          image files (or temp files) but no valid, fully verified
          manifest;
        - *orphaned*: anything else at the root — stray files, empty or
          unrecognizable directories.

        Torn and orphaned entries are moved under ``<root>/quarantine/``
        (never deleted: they are evidence), so a subsequent scan of the
        root sees only committed images. The scan itself never raises on
        bad content — that is its purpose.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        report = RecoveryReport()
        for name in sorted(os.listdir(self.root)):
            if name == QUARANTINE_DIR:
                continue
            path = os.path.join(self.root, name)
            if not os.path.isdir(path):
                report.orphaned.append(name)
                self._quarantine(name, report)
                status = "orphaned"
            else:
                entries = os.listdir(path)
                has_manifest = MANIFEST_NAME in entries
                has_image_files = any(
                    is_image_file(e) or e.endswith(TMP_SUFFIX)
                    for e in entries
                )
                if has_manifest and not self.validate(name):
                    report.committed.append(name)
                    status = "committed"
                elif has_image_files:
                    report.torn.append(name)
                    self._quarantine(name, report)
                    status = "torn"
                else:
                    report.orphaned.append(name)
                    self._quarantine(name, report)
                    status = "orphaned"
            if tracer.enabled:
                tracer.event(
                    "image.recover_entry", image_id=name, status=status
                )
        if tracer.enabled:
            tracer.event(
                "image.recover",
                committed=len(report.committed),
                torn=len(report.torn),
                orphaned=len(report.orphaned),
                quarantined=len(report.quarantined),
            )
        return report

    def _quarantine(self, name: str, report: RecoveryReport) -> None:
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        target = os.path.join(qdir, name)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(qdir, f"{name}.{suffix}")
        os.replace(os.path.join(self.root, name), target)
        fsync_dir(self.root)
        report.quarantined.append(os.path.relpath(target, self.root))
