"""The ImageStore: durable suspend images under one root directory.

Where the in-memory :class:`~repro.storage.statefile.StateStore` keeps
dump payloads as Python objects behind the *simulated* disk, the
ImageStore writes a complete, self-contained suspend image to *real*
files so a suspended query can outlive its process — the paper's grid
migration, rolling upgrade, and scheduled-maintenance scenarios.

Responsibilities:

- :meth:`ImageStore.save` — export every payload a SuspendedQuery
  references, encode the control record, and commit the image with the
  atomic manifest protocol of :mod:`repro.durability.format`. Two codecs
  are supported, selected per store or per save and recorded in the
  manifest as ``codec_version``: the v1 tagged-JSON codec
  (:mod:`repro.durability.codec`, human-readable) and the v2 binary
  columnar codec (:mod:`repro.durability.codec2`, the fast path);
- **delta images** — ``save(..., base_image_id=...)`` commits only the
  blobs whose ``(key, pages, generation)`` triple is not already
  persisted somewhere in the base image's chain; unchanged payloads
  become manifest *references* into the ancestor image. Resume
  materializes the base+delta chain transparently, and
  :meth:`delete_chain` / :meth:`gc` collect whole chains together;
- **parallel durable commit** — :meth:`save_many` serializes and fsyncs
  several victims' images on a bounded thread pool (``commit_workers``).
  A pure wall-clock optimization: on-disk bytes, virtual-clock charges,
  and trace/metric records are identical to the serial path, because
  exports happen up front on the calling thread and all tracing is
  emitted after the barrier, in submission order;
- :meth:`ImageStore.load` — verify checksums and reconstruct the
  SuspendedQuery with its payloads staged for import (the existing
  migration path charges the simulated-disk writes on resume, so cost
  accounting survives the process boundary);
- :meth:`ImageStore.recover` — the startup scan: classify every entry
  under the root as committed, torn, or orphaned, and quarantine the bad
  ones instead of crashing;
- :meth:`ImageStore.list_images` / :meth:`validate` / :meth:`delete` /
  :meth:`gc` — inventory management.
"""

from __future__ import annotations

import os
import shutil
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ReproError
from repro.core.suspended_query import SuspendedQuery
from repro.durability import codec, codec2
from repro.durability.codec2 import CODEC_V1, CODEC_V2
from repro.durability.faults import FaultInjector
from repro.obs.tracer import NULL_TRACER
from repro.durability.format import (
    BLOB_PREFIX,
    CHANNELS_NAME,
    CONTROL_NAME,
    CONTROL_NAME_V2,
    LAYOUT_VERSION,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    SHARDSET_NAME,
    TMP_SUFFIX,
    ImageFormatError,
    atomic_write,
    atomic_write_stream,
    blob_filename,
    dump_json,
    fsync_dir,
    is_image_file,
    load_json,
    manifest_codec_version,
    read_file_checked,
    sha256_hex,
    validate_manifest_dict,
)
from repro.storage.statefile import StateStore


class ImageNotFoundError(ReproError):
    """Raised when an image id does not name a committed image."""


#: Hard ceiling on base+delta chain traversal (cycle/corruption guard).
MAX_CHAIN_WALK = 64

#: Root-level file recording pinned image ids (one JSON document).
PINS_NAME = "PINS.json"

#: Root-level continuation-token ledger kept by the serving layer
#: (:class:`repro.serve.tokens.TokenManager`); named here so the
#: recovery scan knows it is store metadata, not an image.
TOKENS_NAME = "TOKENS.json"


@dataclass(frozen=True)
class ImageInfo:
    """Summary of one committed image."""

    image_id: str
    path: str
    created_at: float
    meta: dict
    num_blobs: int
    blob_pages: int
    total_bytes: int
    #: Which codec wrote the image (1 = tagged JSON, 2 = binary columnar).
    codec_version: int = CODEC_V1
    #: For delta images: the image this one's references resolve into.
    base_image_id: Optional[str] = None
    #: Number of images in the base+delta chain, this one included.
    chain_length: int = 1
    #: Bytes this commit *reused* from ancestors instead of rewriting.
    reused_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "image_id": self.image_id,
            "path": self.path,
            "created_at": self.created_at,
            "meta": self.meta,
            "num_blobs": self.num_blobs,
            "blob_pages": self.blob_pages,
            "total_bytes": self.total_bytes,
            "codec_version": self.codec_version,
            "base_image_id": self.base_image_id,
            "chain_length": self.chain_length,
            "reused_bytes": self.reused_bytes,
        }


@dataclass
class RecoveryReport:
    """What the startup scan found under an image root."""

    committed: list[str] = field(default_factory=list)
    torn: list[str] = field(default_factory=list)
    orphaned: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    #: Shard-set directories found at the root. They are not images; the
    #: scan leaves them in place for
    #: :func:`repro.shard.manifest.classify_shardsets` to judge.
    shardsets: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "committed": list(self.committed),
            "torn": list(self.torn),
            "orphaned": list(self.orphaned),
            "quarantined": list(self.quarantined),
            "shardsets": list(self.shardsets),
        }


@dataclass
class SaveRequest:
    """One image commit, as submitted to :meth:`ImageStore.save_many`."""

    sq: SuspendedQuery
    store: StateStore
    image_id: Optional[str] = None
    meta: Optional[dict] = None
    codec_version: Optional[int] = None
    base_image_id: Optional[str] = None


@dataclass
class _PreparedSave:
    """Main-thread snapshot of everything a worker needs to write."""

    image_id: str
    directory: str
    codec_version: int
    base_image_id: Optional[str]
    #: Local blobs to encode+write: (filename, key, pages, gen, payload).
    local_blobs: list
    #: Manifest entries for payloads reused from the base chain.
    ref_blobs: list
    reused_bytes: int
    sq: SuspendedQuery
    meta: dict
    #: Epoch of the exporting StateStore, recorded per blob so a later
    #: delta can prove its (key, pages, gen) triples are comparable.
    epoch: Optional[str] = None


class ImageStore:
    """Durable suspend images under ``root``, one directory per image.

    ``codec_version`` selects the default encoding for new images (v2,
    the binary columnar codec, unless told otherwise); every image
    records its own codec in the manifest, so a root may mix versions
    and old v1 images stay fully readable. ``commit_workers`` bounds the
    thread pool :meth:`save_many` uses for parallel durable commits
    (``<= 1`` means serial). ``max_chain`` caps base+delta chain length:
    a save whose chain would grow past it is promoted to a full image.
    """

    def __init__(
        self,
        root: str,
        injector: Optional[FaultInjector] = None,
        codec_version: int = CODEC_V2,
        commit_workers: int = 0,
        max_chain: int = 8,
        compress: bool = True,
    ):
        if codec_version not in (CODEC_V1, CODEC_V2):
            raise ValueError(f"unknown codec version {codec_version!r}")
        self.root = os.fspath(root)
        self.injector = injector or FaultInjector()
        self.codec_version = codec_version
        self.commit_workers = commit_workers
        self.max_chain = max(1, max_chain)
        self.compress = compress
        # Manifests are immutable once committed, so they cache cleanly;
        # a hit still stats the manifest file so deletions by other
        # store instances over the same root are noticed.
        self._manifest_cache: dict[str, dict] = {}
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        sq: SuspendedQuery,
        store: StateStore,
        image_id: Optional[str] = None,
        meta: Optional[dict] = None,
        tracer=None,
        codec_version: Optional[int] = None,
        base_image_id: Optional[str] = None,
    ) -> ImageInfo:
        """Commit a suspend image; returns its :class:`ImageInfo`.

        Payloads are exported from ``store`` without extra simulated-disk
        charges — their page writes were already paid when they were
        dumped, and the image is the durable representation of that same
        simulated disk. The commit order is blobs, control record,
        manifest; the manifest rename is the commit point.

        With ``base_image_id`` set, payloads already persisted in the
        base chain (same key, pages, and state-store generation) are
        *referenced* instead of rewritten — a delta image. The base must
        stay on disk for the delta to load; use :meth:`delete_chain` /
        :meth:`gc` to collect chains together.
        """
        prep = self._prepare_save(
            SaveRequest(
                sq=sq,
                store=store,
                image_id=image_id,
                meta=meta,
                codec_version=codec_version,
                base_image_id=base_image_id,
            )
        )
        result = self._write_image(prep)
        return self._finish_save(prep, result, tracer)

    def save_many(
        self, requests: list[SaveRequest], tracer=None
    ) -> list[ImageInfo]:
        """Commit several images, serializing+fsyncing them concurrently.

        Preparation (payload export, id allocation, delta planning) and
        all trace/metric emission happen on the calling thread in request
        order, so the produced bytes and records are identical to running
        :meth:`save` in a loop; only the encode and file I/O in between
        run on the pool. The call is a barrier: it returns after every
        image is durably committed. With ``commit_workers <= 1``, a
        single request, or any configured fault injection, the writes
        run serially (fault injection is ordering-sensitive).
        """
        preps = [self._prepare_save(req) for req in requests]
        faults_armed = bool(
            self.injector.crash_points or self.injector.torn_points
        )
        if self.commit_workers > 1 and len(preps) > 1 and not faults_armed:
            with ThreadPoolExecutor(
                max_workers=min(self.commit_workers, len(preps))
            ) as pool:
                results = list(pool.map(self._write_image, preps))
        else:
            results = [self._write_image(prep) for prep in preps]
        return [
            self._finish_save(prep, result, tracer)
            for prep, result in zip(preps, results)
        ]

    def _prepare_save(self, req: SaveRequest) -> _PreparedSave:
        image_id = req.image_id or f"img-{uuid.uuid4().hex[:12]}"
        if os.sep in image_id or image_id.startswith("."):
            raise ValueError(f"invalid image id {image_id!r}")
        directory = os.path.join(self.root, image_id)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise ValueError(f"image {image_id!r} already exists")
        codec_version = (
            req.codec_version
            if req.codec_version is not None
            else self.codec_version
        )
        if codec_version not in (CODEC_V1, CODEC_V2):
            raise ValueError(f"unknown codec version {codec_version!r}")

        base_image_id = req.base_image_id
        persisted: dict[str, dict] = {}
        if base_image_id is not None:
            chain = self.chain(base_image_id)
            if len(chain) >= self.max_chain:
                # Rebase: a full image caps the resume/validate fan-out.
                base_image_id = None
            else:
                persisted = self._chain_blob_map(chain)

        local_blobs = []
        ref_blobs = []
        reused_bytes = 0
        handles = req.sq.referenced_handles()
        next_file = 0
        epoch = req.store.epoch
        for key in sorted(handles):
            handle = handles[key]
            payload, pages = req.store.export_payload(handle)
            gen = req.store.generation(key)
            prior = persisted.get(key)
            if (
                prior is not None
                and prior["pages"] == pages
                and prior.get("gen", -1) == gen
                and gen > 0
                # Keys and generations restart with every StateStore
                # instance, so the triple only proves byte-equality when
                # the base blob came from this same store (same epoch).
                # A fresh process resuming via token re-writes instead.
                and prior.get("epoch") == epoch
            ):
                # Dump payloads are immutable once stored; an identical
                # (key, pages, generation) triple in the base chain means
                # the bytes are already durable — reference, don't rewrite.
                ref_blobs.append(
                    {
                        "key": key,
                        "pages": pages,
                        "gen": gen,
                        "epoch": epoch,
                        "ref": {
                            "image_id": prior["image_id"],
                            "file": prior["file"],
                        },
                    }
                )
                reused_bytes += prior["bytes"]
            else:
                name = blob_filename(next_file)
                next_file += 1
                local_blobs.append((name, key, pages, gen, payload))
        return _PreparedSave(
            image_id=image_id,
            directory=directory,
            codec_version=codec_version,
            base_image_id=base_image_id,
            local_blobs=local_blobs,
            ref_blobs=ref_blobs,
            reused_bytes=reused_bytes,
            sq=req.sq,
            meta=dict(req.meta or {}),
            epoch=epoch,
        )

    def _write_image(self, prep: _PreparedSave) -> dict:
        """Encode and durably write one prepared image (worker-safe:
        touches only ``prep``, the injector, and the filesystem)."""
        injector = self.injector
        injector.point("begin")
        os.makedirs(prep.directory, exist_ok=True)
        start = time.perf_counter()
        v2 = prep.codec_version == CODEC_V2

        files: dict[str, dict] = {}
        blobs: list[dict] = []
        total = 0
        blob_pages = 0
        for name, key, pages, gen, payload in prep.local_blobs:
            if v2:
                record = {"key": key, "pages": pages, "payload": payload}

                def produce(sink, record=record):
                    codec2.encode_to_stream(
                        record, sink, compress=self.compress
                    )

                digest, nbytes = atomic_write_stream(
                    prep.directory, name, produce, injector
                )
            else:
                data = dump_json(
                    {
                        "key": key,
                        "pages": pages,
                        "payload": codec.encode_value(payload),
                    }
                )
                atomic_write(prep.directory, name, data, injector)
                digest, nbytes = sha256_hex(data), len(data)
            files[name] = {"sha256": digest, "bytes": nbytes}
            blobs.append(
                {
                    "file": name,
                    "key": key,
                    "pages": pages,
                    "gen": gen,
                    "epoch": prep.epoch,
                }
            )
            blob_pages += pages
            total += nbytes
        for entry in prep.ref_blobs:
            blobs.append(dict(entry))
            blob_pages += entry["pages"]
        blobs.sort(key=lambda b: b["key"])

        control_name = CONTROL_NAME_V2 if v2 else CONTROL_NAME
        if v2:
            record = codec2.suspended_query_to_record(prep.sq)

            def produce_control(sink, record=record):
                codec2.encode_to_stream(record, sink, compress=self.compress)

            digest, control_bytes = atomic_write_stream(
                prep.directory, control_name, produce_control, injector
            )
        else:
            control = dump_json(codec.suspended_query_to_dict(prep.sq))
            atomic_write(prep.directory, control_name, control, injector)
            digest, control_bytes = sha256_hex(control), len(control)
        files[control_name] = {"sha256": digest, "bytes": control_bytes}
        total += control_bytes
        blob_bytes = total - control_bytes

        manifest = {
            "layout_version": LAYOUT_VERSION,
            "format_version": (
                codec2.V2_FORMAT_VERSION if v2 else codec.FORMAT_VERSION
            ),
            "codec_version": prep.codec_version,
            "base_image_id": prep.base_image_id,
            "image_id": prep.image_id,
            "created_at": time.time(),
            "meta": prep.meta,
            "control_file": control_name,
            "files": files,
            "blobs": blobs,
        }
        data = dump_json(manifest)
        atomic_write(prep.directory, MANIFEST_NAME, data, injector)
        fsync_dir(self.root)
        injector.point("committed")
        return {
            "manifest": manifest,
            "manifest_bytes": len(data),
            "payload_bytes": total,
            "blob_bytes": blob_bytes,
            "control_bytes": control_bytes,
            "blob_pages": blob_pages,
            "num_local_blobs": len(prep.local_blobs),
            "encode_seconds": time.perf_counter() - start,
        }

    def _finish_save(
        self, prep: _PreparedSave, result: dict, tracer
    ) -> ImageInfo:
        tracer = tracer if tracer is not None else NULL_TRACER
        manifest = result["manifest"]
        total = result["payload_bytes"]
        written = total
        delta_ratio = (
            written / (written + prep.reused_bytes)
            if (written + prep.reused_bytes) > 0
            else 1.0
        )
        if tracer.enabled:
            now = tracer.now()
            tracer.event(
                "image.commit_step",
                image_id=prep.image_id,
                step="blobs",
                files=len(manifest["blobs"]),
                pages=result["blob_pages"],
            )
            tracer.event(
                "image.commit_step",
                image_id=prep.image_id,
                step="control",
                bytes=result["control_bytes"],
            )
            # payload_bytes/bytes_written exclude the manifest: its
            # wall-clock created_at makes the manifest length vary
            # between runs, and trace records must stay byte-
            # deterministic. encode_seconds is wall clock, so it goes to
            # the volatile metrics only, never into trace records.
            tracer.event(
                "image.commit",
                ts=now,
                dur=0.0,
                image_id=prep.image_id,
                codec_version=prep.codec_version,
                base_image_id=prep.base_image_id,
                num_blobs=len(manifest["blobs"]),
                reused_blobs=len(prep.ref_blobs),
                blob_pages=result["blob_pages"],
                payload_bytes=total,
                bytes_written=written,
                reused_bytes=prep.reused_bytes,
                delta_ratio=round(delta_ratio, 6),
            )
            metrics = tracer.metrics
            metrics.counter("image_commits_total").inc()
            metrics.counter("image_payload_bytes_total").inc(total)
            metrics.counter("image_bytes_written_total").inc(written)
            metrics.counter(
                "image_reused_bytes_total"
            ).inc(prep.reused_bytes)
            metrics.gauge("image_delta_ratio").set(round(delta_ratio, 6))
            metrics.histogram(
                "image_encode_seconds", volatile=True
            ).observe(result["encode_seconds"])
        return ImageInfo(
            image_id=prep.image_id,
            path=prep.directory,
            created_at=manifest["created_at"],
            meta=manifest["meta"],
            num_blobs=len(manifest["blobs"]),
            blob_pages=result["blob_pages"],
            total_bytes=total + result["manifest_bytes"],
            codec_version=prep.codec_version,
            base_image_id=prep.base_image_id,
            chain_length=(
                1
                if prep.base_image_id is None
                else len(self.chain(prep.image_id))
            ),
            reused_bytes=prep.reused_bytes,
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _image_dir(self, image_id: str) -> str:
        return os.path.join(self.root, image_id)

    def manifest(self, image_id: str) -> dict:
        """Parse and structurally validate an image's manifest."""
        path = os.path.join(self._image_dir(image_id), MANIFEST_NAME)
        if not os.path.exists(path):
            self._manifest_cache.pop(image_id, None)
            raise ImageNotFoundError(f"no committed image {image_id!r}")
        cached = self._manifest_cache.get(image_id)
        if cached is not None:
            return cached
        manifest = load_json(path)
        validate_manifest_dict(manifest)
        self._manifest_cache[image_id] = manifest
        return manifest

    def chain(self, image_id: str) -> list[str]:
        """The base+delta chain, tip first, ending at the full image."""
        chain: list[str] = []
        current: Optional[str] = image_id
        while current is not None:
            if current in chain or len(chain) >= MAX_CHAIN_WALK:
                raise ImageFormatError(
                    f"image chain at {image_id!r} is cyclic or too deep"
                )
            chain.append(current)
            current = self.manifest(current).get("base_image_id")
        return chain

    def _chain_blob_map(self, chain: list[str]) -> dict[str, dict]:
        """Newest-wins map of every payload persisted along a chain:
        key -> {pages, gen, image_id (owner of the file), file, bytes}."""
        persisted: dict[str, dict] = {}
        for ancestor in reversed(chain):  # oldest first; tip overrides
            manifest = self.manifest(ancestor)
            for blob in manifest["blobs"]:
                if "file" in blob:
                    owner, fname = ancestor, blob["file"]
                    nbytes = manifest["files"][fname]["bytes"]
                else:
                    ref = blob["ref"]
                    owner, fname = ref["image_id"], ref["file"]
                    prior = persisted.get(blob["key"])
                    nbytes = prior["bytes"] if prior else 0
                persisted[blob["key"]] = {
                    "pages": blob["pages"],
                    "gen": blob.get("gen", -1),
                    "epoch": blob.get("epoch"),
                    "image_id": owner,
                    "file": fname,
                    "bytes": nbytes,
                }
        return persisted

    def _decode_control(self, manifest: dict, directory: str) -> SuspendedQuery:
        data = read_file_checked(directory, manifest["control_file"], manifest)
        if manifest_codec_version(manifest) == CODEC_V2:
            return codec2.decode_suspended_query(data)
        del data  # checksum verified above; reparse for clarity
        record = load_json(os.path.join(directory, manifest["control_file"]))
        return codec.suspended_query_from_dict(record)

    def _decode_blob(self, data: bytes, codec_version: int) -> dict:
        if codec_version == CODEC_V2:
            decoded = codec2.decode_bytes(data)
        else:
            import json

            decoded = json.loads(data.decode("utf-8"))
            decoded["payload"] = codec.decode_value(decoded["payload"])
        if not isinstance(decoded, dict) or not {
            "key",
            "pages",
            "payload",
        } <= set(decoded):
            raise ImageFormatError("malformed image blob record")
        return decoded

    def load(self, image_id: str) -> SuspendedQuery:
        """Verify and decode an image into a resumable SuspendedQuery.

        Every file is checksum-verified before anything is decoded; for
        delta images the base chain is walked and referenced blobs are
        verified against *their* owning image's manifest. The returned
        structure has its dump payloads staged in ``migrated_payloads``;
        ``QuerySession.resume`` imports them into the target database's
        state store, charging the page writes there exactly as a
        migration to a replica would.
        """
        manifest = self.manifest(image_id)
        directory = self._image_dir(image_id)
        sq = self._decode_control(manifest, directory)
        manifests: dict[str, dict] = {image_id: manifest}
        payloads: dict = {}
        for blob in manifest["blobs"]:
            if "file" in blob:
                owner_id, fname = image_id, blob["file"]
            else:
                ref = blob["ref"]
                owner_id, fname = ref["image_id"], ref["file"]
            owner_manifest = manifests.get(owner_id)
            if owner_manifest is None:
                owner_manifest = self.manifest(owner_id)
                manifests[owner_id] = owner_manifest
            owner_dir = self._image_dir(owner_id)
            data = read_file_checked(owner_dir, fname, owner_manifest)
            decoded = self._decode_blob(
                data, manifest_codec_version(owner_manifest)
            )
            if decoded["key"] != blob["key"] or decoded["pages"] != blob["pages"]:
                raise ImageFormatError(
                    f"blob {fname!r} does not match its manifest entry"
                )
            payloads[blob["key"]] = (decoded["payload"], blob["pages"])
        sq.migrated_payloads = payloads
        return sq

    def info(self, image_id: str) -> ImageInfo:
        manifest = self.manifest(image_id)
        directory = self._image_dir(image_id)
        total = sum(e["bytes"] for e in manifest["files"].values())
        total += os.path.getsize(os.path.join(directory, MANIFEST_NAME))
        base = manifest.get("base_image_id")
        reused = 0
        for blob in manifest["blobs"]:
            if "ref" in blob:
                try:
                    ref_manifest = self.manifest(blob["ref"]["image_id"])
                    reused += ref_manifest["files"][blob["ref"]["file"]][
                        "bytes"
                    ]
                except (ImageNotFoundError, ImageFormatError, KeyError):
                    pass  # validate() reports broken refs in detail
        try:
            chain_length = len(self.chain(image_id)) if base else 1
        except (ImageNotFoundError, ImageFormatError):
            chain_length = 1
        return ImageInfo(
            image_id=manifest["image_id"],
            path=directory,
            created_at=manifest.get("created_at", 0.0),
            meta=manifest.get("meta", {}),
            num_blobs=len(manifest["blobs"]),
            blob_pages=sum(b["pages"] for b in manifest["blobs"]),
            total_bytes=total,
            codec_version=manifest_codec_version(manifest),
            base_image_id=base,
            chain_length=chain_length,
            reused_bytes=reused,
        )

    def list_images(self) -> list[ImageInfo]:
        """Every committed image under the root, oldest first."""
        infos = []
        for name in sorted(os.listdir(self.root)):
            if name == QUARANTINE_DIR:
                continue
            if os.path.exists(
                os.path.join(self.root, name, MANIFEST_NAME)
            ):
                try:
                    infos.append(self.info(name))
                except (ImageFormatError, ReproError):
                    continue  # recover() deals with bad manifests
        infos.sort(key=lambda i: (i.created_at, i.image_id))
        return infos

    def validate(self, image_id: str) -> list[str]:
        """Full verification; returns a list of problems (empty = ok).

        Delta images additionally require every chain reference to
        resolve: the ancestor image must exist, its manifest must carry
        the referenced file, and the file must verify against the
        ancestor's checksums.
        """
        problems: list[str] = []
        # Validation is about what is on disk — bypass the cache.
        self._manifest_cache.pop(image_id, None)
        try:
            manifest = self.manifest(image_id)
        except ImageNotFoundError:
            return [f"image {image_id!r} not found"]
        except ImageFormatError as exc:
            return [str(exc)]
        directory = self._image_dir(image_id)
        for name in manifest["files"]:
            try:
                read_file_checked(directory, name, manifest)
            except ImageFormatError as exc:
                problems.append(str(exc))
        for name in os.listdir(directory):
            if name == MANIFEST_NAME:
                continue
            if name not in manifest["files"]:
                problems.append(f"unmanifested file {name!r} in image")
        if manifest.get("base_image_id") is not None:
            try:
                self.chain(image_id)
            except (ImageNotFoundError, ImageFormatError) as exc:
                problems.append(f"broken image chain: {exc}")
        for blob in manifest["blobs"]:
            if "ref" not in blob:
                continue
            ref = blob["ref"]
            try:
                ref_manifest = self.manifest(ref["image_id"])
                read_file_checked(
                    self._image_dir(ref["image_id"]), ref["file"], ref_manifest
                )
            except (ImageNotFoundError, ImageFormatError) as exc:
                problems.append(
                    f"unresolvable blob reference {blob['key']!r} -> "
                    f"{ref['image_id']}/{ref['file']}: {exc}"
                )
        return problems

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def delete(self, image_id: str) -> None:
        directory = self._image_dir(image_id)
        self._manifest_cache.pop(image_id, None)
        if not os.path.isdir(directory):
            raise ImageNotFoundError(f"no image directory {image_id!r}")
        shutil.rmtree(directory)
        fsync_dir(self.root)

    def dependents(self, image_id: str) -> list[str]:
        """Committed images whose ``base_image_id`` is ``image_id``."""
        out = []
        for info in self.list_images():
            if info.base_image_id == image_id:
                out.append(info.image_id)
        return out

    def delete_chain(self, image_id: str) -> list[str]:
        """Delete an image together with its whole base+delta chain.

        Ancestors still referenced by a surviving delta outside the
        chain are kept; everything else — the tip, its ancestors, and
        any dependents of the tip — is removed. Returns deleted ids,
        tip-most first.
        """
        try:
            chain = self.chain(image_id)
        except (ImageNotFoundError, ImageFormatError):
            chain = [image_id]
        doomed = set(chain)
        # Grow downward too: deltas built *on top of* any doomed image
        # cannot survive their base.
        grew = True
        while grew:
            grew = False
            for info in self.list_images():
                if (
                    info.base_image_id in doomed
                    and info.image_id not in doomed
                ):
                    doomed.add(info.image_id)
                    grew = True
        # Keep ancestors that some surviving delta still references.
        survivors = [
            info for info in self.list_images() if info.image_id not in doomed
        ]
        protected: set[str] = set()
        for info in survivors:
            try:
                protected.update(self.chain(info.image_id))
            except (ImageNotFoundError, ImageFormatError):
                continue
        deleted = []
        for iid in chain + sorted(doomed - set(chain)):
            if iid in protected:
                continue
            try:
                self.delete(iid)
                deleted.append(iid)
            except ImageNotFoundError:
                continue
        return deleted

    def gc(self, keep: Optional[set] = None) -> list[str]:
        """Delete committed images not in ``keep``; returns deleted ids.

        Chains are collected together: keeping a delta image implicitly
        keeps every ancestor it needs to load. Pinned images (see
        :meth:`pin` — an outstanding continuation token is the typical
        pinner) are protected the same way, chain included, without
        appearing in ``keep``.
        """
        keep = set(keep or ()) | self.pins()
        protected: set[str] = set()
        for iid in keep:
            try:
                protected.update(self.chain(iid))
            except (ImageNotFoundError, ImageFormatError):
                protected.add(iid)
        deleted = []
        for info in self.list_images():
            if info.image_id not in protected:
                self.delete(info.image_id)
                deleted.append(info.image_id)
        return deleted

    # ------------------------------------------------------------------
    # Pinning (token-aware GC)
    # ------------------------------------------------------------------
    def _pins_path(self) -> str:
        return os.path.join(self.root, PINS_NAME)

    def pins(self) -> set[str]:
        """Image ids currently pinned against :meth:`gc`."""
        path = self._pins_path()
        if not os.path.exists(path):
            return set()
        doc = load_json(path)
        return set(doc.get("pinned", []))

    def _write_pins(self, pinned: set) -> None:
        tmp = self._pins_path() + TMP_SUFFIX
        with open(tmp, "wb") as fh:
            fh.write(dump_json({"pinned": sorted(pinned)}))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._pins_path())
        fsync_dir(self.root)

    def pin(self, image_id: str) -> None:
        """Durably protect an image (and its chain) from :meth:`gc`.

        The pin names the tip only; :meth:`gc` expands it to the full
        base+delta chain at collection time, so re-pinning after a delta
        commit is not required for ancestors — only for the new tip.
        Pinning a missing image raises :class:`ImageNotFoundError`.
        """
        self.manifest(image_id)  # existence + structural check
        pinned = self.pins()
        if image_id not in pinned:
            pinned.add(image_id)
            self._write_pins(pinned)

    def unpin(self, image_id: str) -> bool:
        """Drop a pin; returns whether it existed. Never raises on a
        missing image — unpinning is how a consumed token releases its
        image, which may already be gone."""
        pinned = self.pins()
        if image_id not in pinned:
            return False
        pinned.discard(image_id)
        self._write_pins(pinned)
        return True

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------
    def recover(self, tracer=None) -> RecoveryReport:
        """Classify every root entry; quarantine torn/orphaned ones.

        - *committed*: a directory whose manifest parses and whose files
          all verify — safe to resume from; for delta images this
          includes every base-chain reference resolving;
        - *torn*: an interrupted or corrupted commit — a directory with
          image files (or temp files) but no valid, fully verified
          manifest, or a delta whose chain is broken;
        - *orphaned*: anything else at the root — stray files, empty or
          unrecognizable directories.

        Torn and orphaned entries are moved under ``<root>/quarantine/``
        (never deleted: they are evidence), so a subsequent scan of the
        root sees only committed images. The scan itself never raises on
        bad content — that is its purpose.

        A crash mid-way through a *delta* commit quarantines only the
        torn tip: its base chain was committed earlier, still verifies,
        and remains resumable. Deltas are scanned after their bases
        (chain walks look upward only), so a quarantined base also takes
        its now-unresolvable deltas to quarantine on the same scan or
        the next one.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        # Quarantine moves directories without going through delete().
        self._manifest_cache.clear()
        report = RecoveryReport()
        for name in sorted(os.listdir(self.root)):
            if name == QUARANTINE_DIR or name.startswith(
                (PINS_NAME, TOKENS_NAME)
            ):
                continue  # store metadata (or its tmp), not an image
            path = os.path.join(self.root, name)
            if not os.path.isdir(path):
                report.orphaned.append(name)
                self._quarantine(name, report)
                status = "orphaned"
            else:
                entries = os.listdir(path)
                if any(
                    e in (SHARDSET_NAME, CHANNELS_NAME)
                    or e.startswith((SHARDSET_NAME, CHANNELS_NAME))
                    for e in entries
                ):
                    # A shard-set directory (committed or torn): not an
                    # image. Its verdict — consistent cut or torn — is
                    # a cross-image judgement this per-image scan cannot
                    # make; repro.shard.manifest.classify_shardsets owns
                    # it.
                    report.shardsets.append(name)
                    if tracer.enabled:
                        tracer.event(
                            "image.recover_entry",
                            image_id=name,
                            status="shardset",
                        )
                    continue
                has_manifest = MANIFEST_NAME in entries
                has_image_files = any(
                    is_image_file(e) or e.endswith(TMP_SUFFIX)
                    for e in entries
                )
                if has_manifest and not self.validate(name):
                    report.committed.append(name)
                    status = "committed"
                elif has_image_files:
                    report.torn.append(name)
                    self._quarantine(name, report)
                    status = "torn"
                else:
                    report.orphaned.append(name)
                    self._quarantine(name, report)
                    status = "orphaned"
            if tracer.enabled:
                tracer.event(
                    "image.recover_entry", image_id=name, status=status
                )
        # A base quarantined on this pass strands deltas scanned before
        # it; sweep until the set of committed images is self-consistent.
        swept = True
        while swept:
            swept = False
            for name in list(report.committed):
                if self.validate(name):
                    report.committed.remove(name)
                    report.torn.append(name)
                    self._quarantine(name, report)
                    swept = True
        if tracer.enabled:
            tracer.event(
                "image.recover",
                committed=len(report.committed),
                torn=len(report.torn),
                orphaned=len(report.orphaned),
                quarantined=len(report.quarantined),
            )
        return report

    def _quarantine(self, name: str, report: RecoveryReport) -> None:
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        target = os.path.join(qdir, name)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(qdir, f"{name}.{suffix}")
        os.replace(os.path.join(self.root, name), target)
        fsync_dir(self.root)
        report.quarantined.append(os.path.relpath(target, self.root))
