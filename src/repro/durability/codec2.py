"""Codec v2: the binary columnar image encoding.

Where the v1 codec (:mod:`repro.durability.codec`) turns every value into
tagged JSON — readable, but paying Python-level per-value dispatch on both
sides plus JSON text overhead — v2 is a binary format built for the
suspend path's actual data: big, regular collections of rows (saved rows,
dumped heap state, sort sublists, hash partitions) plus small irregular
control dicts. Design points:

- **Columnar row blocks.** A list of same-arity tuples whose columns are
  uniformly typed (the common case for every dump payload) is encoded as
  typed column segments: one ``struct`` bulk pack per int64/float64
  column instead of one dispatch per cell. Mixed columns fall back to
  per-cell encoding inside the block, so the fast path never changes
  what round-trips.
- **String interning.** Every short string is written once (``SDEF``) and
  referenced by index afterwards (``SREF``); operator labels, dict keys,
  and dataclass field names collapse to one-byte varints.
- **Frames.** The encoded byte stream is chunked into frames of bounded
  size, each carrying its own CRC32 and an optional zlib-compressed
  payload, behind a fixed stream magic. Frames are pure transport: the
  value encoding runs straight through frame boundaries, so the encoder
  can stream chunks to disk and its peak buffered memory is one chunk.
- **Determinism.** Encoding the same value twice — in the same or a
  different process — yields byte-identical output (PROTOCOL.md §7's
  determinism rule, extended to image bytes): dict order is insertion
  order (deterministic for everything the suspend path builds), set
  members are sorted by ``repr``, floats are packed exactly, zlib runs at
  a fixed level.

The value domain is exactly v1's: scalars, lists, tuples, dicts with
arbitrary keys, sets/frozensets, :class:`DumpHandle` references, and the
registered spec/predicate dataclasses. ``CODEC_V2`` is recorded in the
image manifest as ``codec_version``; v1 images remain fully readable.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from typing import Any, Callable, Iterator

from repro.core.strategies import OpDecision, Strategy, SuspendPlan
from repro.core.suspended_query import OpSuspendEntry, SuspendedQuery
from repro.durability.codec import _DATACLASSES, CodecError
from repro.storage.statefile import DumpHandle

#: Codec identifiers recorded in the image manifest.
CODEC_V1 = 1
CODEC_V2 = 2

#: Record-level version stamped inside the v2 control record.
V2_FORMAT_VERSION = 2

#: First bytes of every v2-encoded file.
STREAM_MAGIC = b"RIMG2\x00"
FRAME_MAGIC = b"F2"
FRAME_HEADER = struct.Struct("<2sBIII")  # magic, flags, raw, stored, crc32
FLAG_ZLIB = 0x01

#: Target uncompressed frame payload size; the encoder's peak buffered
#: memory is bounded by (roughly) one chunk.
DEFAULT_CHUNK_BYTES = 256 * 1024
#: zlib level: 1 trades a little ratio for a lot of speed, which is the
#: right trade for a suspend path racing a wall clock.
ZLIB_LEVEL = 1

#: Strings longer than this are not interned (one-shot payloads would
#: only bloat the intern table).
INTERN_MAX_BYTES = 512

#: Minimum row count before a list of tuples becomes a columnar block.
ROWS_MIN = 4
ROWS_MAX_ARITY = 64

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

# Value tags ------------------------------------------------------------
T_NONE = 0
T_TRUE = 1
T_FALSE = 2
T_INT = 3
T_FLOAT = 4
T_SDEF = 5  # define a new interned string (implicitly assigns next id)
T_SREF = 6  # reference an interned string by id
T_SLONG = 7  # long string, never interned
T_LIST = 8
T_TUPLE = 9
T_DICT = 10
T_SET = 11
T_FSET = 12
T_HANDLE = 13
T_OBJ = 14
T_ROWS = 15  # columnar block: list of same-arity tuples

# Column types inside a T_ROWS block
C_GEN = 0
C_I64 = 1
C_F64 = 2
C_STR = 3


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _unzigzag(u: int) -> int:
    return (u >> 1) if not (u & 1) else -((u + 1) >> 1)


class _Encoder:
    """Streaming value encoder: fills a buffer, flushes frames to a sink."""

    __slots__ = ("buf", "sink", "chunk_bytes", "compress", "strings")

    def __init__(
        self,
        sink: Callable[[bytes], None],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        compress: bool = True,
    ):
        self.buf = bytearray()
        self.sink = sink
        self.chunk_bytes = max(1024, chunk_bytes)
        self.compress = compress
        self.strings: dict[str, int] = {}

    # -- low-level emitters -------------------------------------------
    def uvarint(self, n: int) -> None:
        buf = self.buf
        while True:
            b = n & 0x7F
            n >>= 7
            if n:
                buf.append(b | 0x80)
            else:
                buf.append(b)
                return

    def string(self, s: str) -> None:
        data = s.encode("utf-8")
        if len(data) > INTERN_MAX_BYTES:
            self.buf.append(T_SLONG)
            self.uvarint(len(data))
            self.buf += data
            return
        index = self.strings.get(s)
        if index is None:
            self.strings[s] = len(self.strings)
            self.buf.append(T_SDEF)
            self.uvarint(len(data))
            self.buf += data
        else:
            self.buf.append(T_SREF)
            self.uvarint(index)

    # -- frames --------------------------------------------------------
    def _flush(self, force: bool = False) -> None:
        if not self.buf or (not force and len(self.buf) < self.chunk_bytes):
            return
        raw = bytes(self.buf)
        self.buf.clear()
        flags = 0
        payload = raw
        if self.compress:
            packed = zlib.compress(raw, ZLIB_LEVEL)
            if len(packed) < len(raw):
                flags = FLAG_ZLIB
                payload = packed
        header = FRAME_HEADER.pack(
            FRAME_MAGIC, flags, len(raw), len(payload), zlib.crc32(payload)
        )
        self.sink(header + payload)

    def maybe_flush(self) -> None:
        if len(self.buf) >= self.chunk_bytes:
            self._flush()

    # -- values --------------------------------------------------------
    def value(self, v: Any) -> None:
        buf = self.buf
        t = type(v)
        if v is None:
            buf.append(T_NONE)
        elif t is bool:
            buf.append(T_TRUE if v else T_FALSE)
        elif t is int:
            buf.append(T_INT)
            self.uvarint(_zigzag(v))
        elif t is float:
            buf.append(T_FLOAT)
            buf += struct.pack("<d", v)
        elif t is str:
            self.string(v)
        elif t is list:
            if _rows_shape(v):
                self._rows(v)
            else:
                buf.append(T_LIST)
                self.uvarint(len(v))
                for item in v:
                    self.value(item)
                    self.maybe_flush()
        elif t is tuple:
            buf.append(T_TUPLE)
            self.uvarint(len(v))
            for item in v:
                self.value(item)
                self.maybe_flush()
        elif t is dict:
            buf.append(T_DICT)
            self.uvarint(len(v))
            for key, item in v.items():
                self.value(key)
                self.value(item)
                self.maybe_flush()
        elif t is set or t is frozenset:
            buf.append(T_SET if t is set else T_FSET)
            self.uvarint(len(v))
            for item in sorted(v, key=repr):
                self.value(item)
                self.maybe_flush()
        elif t is DumpHandle:
            buf.append(T_HANDLE)
            self.string(v.key)
            self.uvarint(v.pages)
        elif dataclasses.is_dataclass(v) and t.__name__ in _DATACLASSES:
            buf.append(T_OBJ)
            self.string(t.__name__)
            fields = dataclasses.fields(v)
            self.uvarint(len(fields))
            for f in fields:
                self.string(f.name)
                self.value(getattr(v, f.name))
                self.maybe_flush()
        elif isinstance(v, bool):  # bool subclasses (paranoia)
            buf.append(T_TRUE if v else T_FALSE)
        else:
            raise CodecError(
                f"cannot encode value of type {t.__name__!r} into an image"
            )

    def _rows(self, rows: list) -> None:
        """Columnar block: per-column typed segments, struct bulk packs."""
        buf = self.buf
        buf.append(T_ROWS)
        nrows = len(rows)
        arity = len(rows[0])
        self.uvarint(nrows)
        self.uvarint(arity)
        for col in range(arity):
            values = [row[col] for row in rows]
            ctype = _column_type(values)
            buf.append(ctype)
            if ctype == C_I64:
                buf += struct.pack(f"<{nrows}q", *values)
            elif ctype == C_F64:
                buf += struct.pack(f"<{nrows}d", *values)
            elif ctype == C_STR:
                for s in values:
                    self.string(s)
            else:
                for item in values:
                    self.value(item)
            self.maybe_flush()


def _rows_shape(v: list) -> bool:
    """Whether ``v`` qualifies for the columnar block encoding."""
    if len(v) < ROWS_MIN or type(v[0]) is not tuple:
        return False
    arity = len(v[0])
    if not 1 <= arity <= ROWS_MAX_ARITY:
        return False
    return all(type(row) is tuple and len(row) == arity for row in v)


def _column_type(values: list) -> int:
    first = type(values[0])
    if first is int:
        if all(
            type(x) is int and _I64_MIN <= x <= _I64_MAX for x in values
        ):
            return C_I64
        return C_GEN
    if first is float:
        if all(type(x) is float for x in values):
            return C_F64
        return C_GEN
    if first is str:
        if all(type(x) is str for x in values):
            return C_STR
        return C_GEN
    return C_GEN


class _Decoder:
    """Mirror of :class:`_Encoder` over one contiguous value buffer."""

    __slots__ = ("data", "pos", "strings")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0
        self.strings: list[str] = []

    def uvarint(self) -> int:
        data, pos = self.data, self.pos
        shift = 0
        result = 0
        while True:
            b = data[pos]
            pos += 1
            result |= (b & 0x7F) << shift
            if not (b & 0x80):
                break
            shift += 7
        self.pos = pos
        return result

    def _string_tail(self, tag: int) -> str:
        if tag == T_SREF:
            return self.strings[self.uvarint()]
        n = self.uvarint()
        raw = bytes(self.data[self.pos : self.pos + n])
        self.pos += n
        s = raw.decode("utf-8")
        if tag == T_SDEF:
            self.strings.append(s)
        return s

    def value(self) -> Any:
        tag = self.data[self.pos]
        self.pos += 1
        if tag == T_NONE:
            return None
        if tag == T_TRUE:
            return True
        if tag == T_FALSE:
            return False
        if tag == T_INT:
            return _unzigzag(self.uvarint())
        if tag == T_FLOAT:
            v = struct.unpack_from("<d", self.data, self.pos)[0]
            self.pos += 8
            return v
        if tag in (T_SDEF, T_SREF, T_SLONG):
            return self._string_tail(tag)
        if tag == T_LIST:
            return [self.value() for _ in range(self.uvarint())]
        if tag == T_TUPLE:
            return tuple(self.value() for _ in range(self.uvarint()))
        if tag == T_DICT:
            n = self.uvarint()
            out = {}
            for _ in range(n):
                key = self.value()
                out[key] = self.value()
            return out
        if tag == T_SET:
            return set(self.value() for _ in range(self.uvarint()))
        if tag == T_FSET:
            return frozenset(self.value() for _ in range(self.uvarint()))
        if tag == T_HANDLE:
            key_tag = self.data[self.pos]
            self.pos += 1
            key = self._string_tail(key_tag)
            return DumpHandle(store_id=-1, key=key, pages=self.uvarint())
        if tag == T_OBJ:
            name_tag = self.data[self.pos]
            self.pos += 1
            name = self._string_tail(name_tag)
            cls = _DATACLASSES.get(name)
            if cls is None:
                raise CodecError(f"image references unknown class {name!r}")
            fields = {}
            for _ in range(self.uvarint()):
                field_tag = self.data[self.pos]
                self.pos += 1
                fname = self._string_tail(field_tag)
                fields[fname] = self.value()
            return cls(**fields)
        if tag == T_ROWS:
            return self._rows()
        raise CodecError(f"unknown v2 value tag {tag!r}")

    def _rows(self) -> list:
        nrows = self.uvarint()
        arity = self.uvarint()
        columns = []
        for _ in range(arity):
            ctype = self.data[self.pos]
            self.pos += 1
            if ctype == C_I64:
                col = struct.unpack_from(f"<{nrows}q", self.data, self.pos)
                self.pos += 8 * nrows
            elif ctype == C_F64:
                col = struct.unpack_from(f"<{nrows}d", self.data, self.pos)
                self.pos += 8 * nrows
            elif ctype == C_STR:
                col = []
                for _ in range(nrows):
                    tag = self.data[self.pos]
                    self.pos += 1
                    col.append(self._string_tail(tag))
            elif ctype == C_GEN:
                col = [self.value() for _ in range(nrows)]
            else:
                raise CodecError(f"unknown v2 column type {ctype!r}")
            columns.append(col)
        return list(zip(*columns))


# ----------------------------------------------------------------------
# Stream API
# ----------------------------------------------------------------------
def encode_to_stream(
    value: Any,
    sink: Callable[[bytes], None],
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    compress: bool = True,
) -> None:
    """Encode ``value`` as magic + frames, pushing chunks into ``sink``.

    The sink receives the stream magic first, then one ``bytes`` object
    per frame as the encoder's buffer fills; peak buffered memory is
    bounded by roughly one chunk.
    """
    sink(STREAM_MAGIC)
    enc = _Encoder(sink, chunk_bytes=chunk_bytes, compress=compress)
    enc.value(value)
    enc._flush(force=True)


def encode_bytes(
    value: Any,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    compress: bool = True,
) -> bytes:
    """Encode ``value`` into one in-memory byte string."""
    chunks: list[bytes] = []
    encode_to_stream(
        value, chunks.append, chunk_bytes=chunk_bytes, compress=compress
    )
    return b"".join(chunks)


def iter_frame_payloads(data: bytes) -> Iterator[bytes]:
    """Yield each frame's raw (decompressed) payload, verifying CRCs."""
    if not data.startswith(STREAM_MAGIC):
        raise CodecError("not a v2 image stream (bad magic)")
    view = memoryview(data)
    pos = len(STREAM_MAGIC)
    end = len(data)
    while pos < end:
        if end - pos < FRAME_HEADER.size:
            raise CodecError("truncated v2 frame header")
        magic, flags, raw_len, stored_len, crc = FRAME_HEADER.unpack_from(
            view, pos
        )
        if magic != FRAME_MAGIC:
            raise CodecError("corrupt v2 frame (bad frame magic)")
        pos += FRAME_HEADER.size
        if end - pos < stored_len:
            raise CodecError("truncated v2 frame payload")
        payload = bytes(view[pos : pos + stored_len])
        pos += stored_len
        if zlib.crc32(payload) != crc:
            raise CodecError("v2 frame CRC mismatch (torn or corrupt frame)")
        if flags & FLAG_ZLIB:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise CodecError(f"v2 frame decompression failed: {exc}") from exc
        if len(payload) != raw_len:
            raise CodecError("v2 frame length mismatch")
        yield payload


def decode_bytes(data: bytes) -> Any:
    """Decode one value from a v2 stream produced by :func:`encode_bytes`."""
    try:
        buffer = b"".join(iter_frame_payloads(data))
        dec = _Decoder(buffer)
        value = dec.value()
    except (IndexError, struct.error) as exc:
        raise CodecError(f"truncated v2 value stream: {exc}") from exc
    if dec.pos != len(buffer):
        raise CodecError("trailing bytes after v2 value")
    return value


# ----------------------------------------------------------------------
# SuspendedQuery records (the v2 control file)
# ----------------------------------------------------------------------
def suspended_query_to_record(sq: SuspendedQuery) -> dict:
    """Raw-value control record; v2 needs no JSON tagging of values."""
    plan = sq.suspend_plan
    return {
        "format_version": V2_FORMAT_VERSION,
        "plan_spec": sq.plan_spec,
        "suspend_plan": {
            "source": plan.source,
            "decisions": [
                (
                    op_id,
                    plan.decisions[op_id].strategy.value,
                    plan.decisions[op_id].goback_anchor,
                    tuple(plan.decisions[op_id].dump_children),
                )
                for op_id in sorted(plan.decisions)
            ],
        },
        "entries": [
            {
                "op": e.op_id,
                "kind": e.kind,
                "target_control": e.target_control,
                "ckpt_payload": e.ckpt_payload,
                "dump_handle": e.dump_handle,
                "current_control": e.current_control,
                "saved_rows": list(e.saved_rows),
            }
            for e in (sq.entries[op_id] for op_id in sorted(sq.entries))
        ],
        "root_rows_emitted": sq.root_rows_emitted,
        "suspended_at": sq.suspended_at,
        "query_clock": sq.query_clock,
    }


def suspended_query_from_record(record: dict) -> SuspendedQuery:
    version = record.get("format_version")
    if version != V2_FORMAT_VERSION:
        raise CodecError(
            f"unsupported v2 record version {version!r} "
            f"(this build reads version {V2_FORMAT_VERSION})"
        )
    plan_data = record["suspend_plan"]
    decisions = {
        op_id: OpDecision(
            strategy=Strategy(strategy),
            goback_anchor=anchor,
            dump_children=tuple(children),
        )
        for op_id, strategy, anchor, children in plan_data["decisions"]
    }
    sq = SuspendedQuery(
        plan_spec=record["plan_spec"],
        suspend_plan=SuspendPlan(
            decisions=decisions, source=plan_data.get("source", "manual")
        ),
        root_rows_emitted=record["root_rows_emitted"],
        suspended_at=record["suspended_at"],
        query_clock=record.get("query_clock", record["suspended_at"]),
    )
    for item in record["entries"]:
        sq.add_entry(
            OpSuspendEntry(
                op_id=item["op"],
                kind=item["kind"],
                target_control=item["target_control"],
                ckpt_payload=item["ckpt_payload"],
                dump_handle=item["dump_handle"],
                current_control=item["current_control"],
                saved_rows=item["saved_rows"],
            )
        )
    return sq


def encode_suspended_query(
    sq: SuspendedQuery, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> bytes:
    """One-call control-record encode (tests and benchmarks)."""
    return encode_bytes(suspended_query_to_record(sq), chunk_bytes=chunk_bytes)


def decode_suspended_query(data: bytes) -> SuspendedQuery:
    return suspended_query_from_record(decode_bytes(data))
