"""Crash-matrix harness for the durable-image commit protocol.

The safety claim the subsystem makes is binary: a crash at *any* point
during ``ImageStore.save`` leaves either

- a **committed** image — the recovery scan accepts it, every checksum
  verifies, and it decodes into a resumable SuspendedQuery — or
- a **detected partial** — the recovery scan classifies it torn/orphaned
  and quarantines it.

What must never happen is *silent corruption*: the scan calling an image
committed that then fails validation or fails to load. This harness
proves the claim by enumeration: a clean save with a recorder injector
lists every crash point and torn-write opportunity the protocol actually
passes (so the matrix cannot drift out of sync with the code), then each
fault is injected into a fresh image root and the aftermath is put
through recovery and classified.

The matrix is parametric in two new dimensions since codec v2:

- ``codec_version`` — v1 saves pass through :func:`atomic_write` (torn
  writes truncate JSON mid-document), v2 through
  :func:`atomic_write_stream` (torn writes truncate *inside a CRC'd
  frame*); both must classify as torn, never silently corrupt;
- the **delta matrix** (:func:`run_delta_crash_matrix`) — a base image
  is committed cleanly, one payload's generation is bumped, and the
  fault strikes the *delta* commit. The claim strengthens: the delta is
  torn/quarantined as usual AND the base image must remain committed and
  loadable — a crashed delta can never take its chain down with it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.suspended_query import SuspendedQuery
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.durability.store import ImageStore
from repro.storage.statefile import StateStore

#: Crash points that fire only after the manifest rename: the image is
#: already committed when the "crash" happens, so surviving is correct.
_POST_COMMIT_POINTS = ("renamed:MANIFEST.json", "committed")


@dataclass(frozen=True)
class CrashOutcome:
    """What one injected fault left behind, after the recovery scan."""

    #: ``crash:<point>`` or ``torn:<file>``.
    fault: str
    #: Whether the injected crash actually fired during save.
    crashed: bool
    #: Recovery classification: committed / torn / orphaned / absent.
    classification: str
    #: For committed images: the image loaded and decoded fully.
    loaded: bool
    #: The failure the claim forbids: classified committed but broken.
    silent_corruption: bool
    detail: str = ""
    #: Delta matrix only: the pre-existing base image survived intact.
    base_intact: bool = True


def _make_store(
    root: str,
    injector: Optional[FaultInjector] = None,
    codec_version: Optional[int] = None,
) -> ImageStore:
    if codec_version is None:
        return ImageStore(root, injector=injector)
    return ImageStore(root, injector=injector, codec_version=codec_version)


def enumerate_faults(
    sq: SuspendedQuery,
    store: StateStore,
    scratch_root: str,
    codec_version: Optional[int] = None,
) -> tuple[list[str], list[str]]:
    """Record every crash point and torn-write label one save passes."""
    recorder = FaultInjector()
    _make_store(scratch_root, recorder, codec_version).save(
        sq, store, image_id="probe"
    )
    points = list(dict.fromkeys(recorder.observed_points))
    torn = list(dict.fromkeys(recorder.observed_torn))
    return points, torn


def _classify(report, image_id: str) -> str:
    if image_id in report.committed:
        return "committed"
    if image_id in report.torn:
        return "torn"
    if image_id in report.orphaned:
        return "orphaned"
    return "absent"


def _check_committed(
    survivor: ImageStore, sq: SuspendedQuery, image_id: str
) -> tuple[bool, bool, str]:
    """Validate+load a committed image; returns (loaded, silent, detail)."""
    problems = survivor.validate(image_id)
    if problems:
        return False, True, "; ".join(problems)
    try:
        recovered = survivor.load(image_id)
        return bool(recovered.entries) or not sq.entries, False, ""
    except Exception as exc:  # any load failure is corruption
        return False, True, str(exc)


def run_one_fault(
    sq: SuspendedQuery,
    store: StateStore,
    root: str,
    injector: FaultInjector,
    fault: str,
    codec_version: Optional[int] = None,
) -> CrashOutcome:
    """Inject one fault into a save under a fresh ``root``; classify."""
    crashed = False
    detail = ""
    try:
        _make_store(root, injector, codec_version).save(
            sq, store, image_id="img"
        )
    except InjectedCrash as exc:
        crashed = True
        detail = str(exc)

    # A new process starts: scan the root with no injector configured.
    survivor = ImageStore(root)
    report = survivor.recover()
    classification = _classify(report, "img")

    loaded = False
    silent = False
    if classification == "committed":
        loaded, silent, problem = _check_committed(survivor, sq, "img")
        detail = problem or detail
        # A crash strictly before the manifest rename must not leave a
        # committed image behind — that would mean the commit point leaked.
        post_commit = {f"crash:{p}" for p in _POST_COMMIT_POINTS}
        if crashed and fault not in post_commit:
            silent = True
            detail = detail or "pre-commit crash left a committed image"
    return CrashOutcome(
        fault=fault,
        crashed=crashed,
        classification=classification,
        loaded=loaded,
        silent_corruption=silent,
        detail=detail,
    )


def run_crash_matrix(
    make_suspended: "Callable",
    root: str,
    codec_version: Optional[int] = None,
) -> list[CrashOutcome]:
    """Run the full fault matrix; returns one outcome per fault.

    ``make_suspended()`` must return a fresh ``(sq, state_store)`` pair —
    fresh so each variant's save sees identical inputs regardless of what
    earlier variants did. Faults are enumerated from a clean recorder run,
    then each crash point and each torn-write label gets its own image
    root under ``root``.
    """
    sq, store = make_suspended()
    points, torn_labels = enumerate_faults(
        sq, store, os.path.join(root, "probe"), codec_version
    )
    outcomes: list[CrashOutcome] = []
    for index, point in enumerate(points):
        sq, store = make_suspended()
        outcomes.append(
            run_one_fault(
                sq,
                store,
                os.path.join(root, f"crash-{index:02d}"),
                FaultInjector.crashing_at(point),
                fault=f"crash:{point}",
                codec_version=codec_version,
            )
        )
    for index, label in enumerate(torn_labels):
        sq, store = make_suspended()
        outcomes.append(
            run_one_fault(
                sq,
                store,
                os.path.join(root, f"torn-{index:02d}"),
                FaultInjector.tearing(label),
                fault=f"torn:{label}",
                codec_version=codec_version,
            )
        )
    return outcomes


# ----------------------------------------------------------------------
# Delta-commit matrix
# ----------------------------------------------------------------------
def bump_one_generation(sq: SuspendedQuery, store: StateStore) -> None:
    """Re-dump one referenced payload so the next delta must rewrite it.

    The payload bytes are unchanged but its write generation advances,
    which is exactly what a repeat suspend after more execution looks
    like to the delta planner — so the delta commit carries one local
    blob alongside its base-chain references.
    """
    handles = sq.referenced_handles()
    if not handles:
        return
    key = sorted(handles)[0]
    payload, pages = store.export_payload(handles[key])
    store.dump(key, payload, pages)


def _commit_base(
    sq: SuspendedQuery,
    store: StateStore,
    root: str,
    codec_version: Optional[int],
) -> None:
    _make_store(root, None, codec_version).save(sq, store, image_id="base")
    bump_one_generation(sq, store)


def enumerate_delta_faults(
    make_suspended: "Callable",
    scratch_root: str,
    codec_version: Optional[int] = None,
) -> tuple[list[str], list[str]]:
    """Crash points / torn labels a *delta* commit actually passes."""
    sq, store = make_suspended()
    _commit_base(sq, store, scratch_root, codec_version)
    recorder = FaultInjector()
    _make_store(scratch_root, recorder, codec_version).save(
        sq, store, image_id="probe", base_image_id="base"
    )
    points = list(dict.fromkeys(recorder.observed_points))
    torn = list(dict.fromkeys(recorder.observed_torn))
    return points, torn


def run_one_delta_fault(
    make_suspended: "Callable",
    root: str,
    injector: FaultInjector,
    fault: str,
    codec_version: Optional[int] = None,
) -> CrashOutcome:
    """Commit a base cleanly, then inject ``fault`` into the delta commit.

    Beyond the usual no-silent-corruption claim, the base image must
    survive every mid-chain crash: it was durably committed before the
    delta began, and nothing the delta does may disturb it.
    """
    sq, store = make_suspended()
    _commit_base(sq, store, root, codec_version)
    crashed = False
    detail = ""
    try:
        _make_store(root, injector, codec_version).save(
            sq, store, image_id="img", base_image_id="base"
        )
    except InjectedCrash as exc:
        crashed = True
        detail = str(exc)

    survivor = ImageStore(root)
    report = survivor.recover()
    classification = _classify(report, "img")
    base_loaded, base_broken, base_problem = (
        _check_committed(survivor, sq, "base")
        if "base" in report.committed
        else (False, True, "base image not committed after delta crash")
    )
    base_intact = base_loaded and not base_broken

    loaded = False
    silent = False
    if classification == "committed":
        loaded, silent, problem = _check_committed(survivor, sq, "img")
        detail = problem or detail
        post_commit = {f"crash:{p}" for p in _POST_COMMIT_POINTS}
        if crashed and fault not in post_commit:
            silent = True
            detail = detail or "pre-commit crash left a committed delta"
    if not base_intact:
        silent = True
        detail = detail or base_problem
    return CrashOutcome(
        fault=fault,
        crashed=crashed,
        classification=classification,
        loaded=loaded,
        silent_corruption=silent,
        detail=detail,
        base_intact=base_intact,
    )


def run_delta_crash_matrix(
    make_suspended: "Callable",
    root: str,
    codec_version: Optional[int] = None,
) -> list[CrashOutcome]:
    """The delta-commit fault sweep: every fault, base must survive."""
    points, torn_labels = enumerate_delta_faults(
        make_suspended, os.path.join(root, "probe"), codec_version
    )
    outcomes: list[CrashOutcome] = []
    for index, point in enumerate(points):
        outcomes.append(
            run_one_delta_fault(
                make_suspended,
                os.path.join(root, f"crash-{index:02d}"),
                FaultInjector.crashing_at(point),
                fault=f"crash:{point}",
                codec_version=codec_version,
            )
        )
    for index, label in enumerate(torn_labels):
        outcomes.append(
            run_one_delta_fault(
                make_suspended,
                os.path.join(root, f"torn-{index:02d}"),
                FaultInjector.tearing(label),
                fault=f"torn:{label}",
                codec_version=codec_version,
            )
        )
    return outcomes
