"""Crash-matrix harness for the durable-image commit protocol.

The safety claim the subsystem makes is binary: a crash at *any* point
during ``ImageStore.save`` leaves either

- a **committed** image — the recovery scan accepts it, every checksum
  verifies, and it decodes into a resumable SuspendedQuery — or
- a **detected partial** — the recovery scan classifies it torn/orphaned
  and quarantines it.

What must never happen is *silent corruption*: the scan calling an image
committed that then fails validation or fails to load. This harness
proves the claim by enumeration: a clean save with a recorder injector
lists every crash point and torn-write opportunity the protocol actually
passes (so the matrix cannot drift out of sync with the code), then each
fault is injected into a fresh image root and the aftermath is put
through recovery and classified.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.suspended_query import SuspendedQuery
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.durability.store import ImageStore
from repro.storage.statefile import StateStore

#: Crash points that fire only after the manifest rename: the image is
#: already committed when the "crash" happens, so surviving is correct.
_POST_COMMIT_POINTS = ("renamed:MANIFEST.json", "committed")


@dataclass(frozen=True)
class CrashOutcome:
    """What one injected fault left behind, after the recovery scan."""

    #: ``crash:<point>`` or ``torn:<file>``.
    fault: str
    #: Whether the injected crash actually fired during save.
    crashed: bool
    #: Recovery classification: committed / torn / orphaned / absent.
    classification: str
    #: For committed images: the image loaded and decoded fully.
    loaded: bool
    #: The failure the claim forbids: classified committed but broken.
    silent_corruption: bool
    detail: str = ""


def enumerate_faults(
    sq: SuspendedQuery, store: StateStore, scratch_root: str
) -> tuple[list[str], list[str]]:
    """Record every crash point and torn-write label one save passes."""
    recorder = FaultInjector()
    ImageStore(scratch_root, injector=recorder).save(
        sq, store, image_id="probe"
    )
    points = list(dict.fromkeys(recorder.observed_points))
    torn = list(dict.fromkeys(recorder.observed_torn))
    return points, torn


def run_one_fault(
    sq: SuspendedQuery,
    store: StateStore,
    root: str,
    injector: FaultInjector,
    fault: str,
) -> CrashOutcome:
    """Inject one fault into a save under a fresh ``root``; classify."""
    crashed = False
    detail = ""
    try:
        ImageStore(root, injector=injector).save(sq, store, image_id="img")
    except InjectedCrash as exc:
        crashed = True
        detail = str(exc)

    # A new process starts: scan the root with no injector configured.
    survivor = ImageStore(root)
    report = survivor.recover()
    if "img" in report.committed:
        classification = "committed"
    elif "img" in report.torn:
        classification = "torn"
    elif "img" in report.orphaned:
        classification = "orphaned"
    else:
        classification = "absent"

    loaded = False
    silent = False
    if classification == "committed":
        problems = survivor.validate("img")
        if problems:
            silent = True
            detail = "; ".join(problems)
        else:
            try:
                recovered = survivor.load("img")
                loaded = bool(recovered.entries) or not sq.entries
            except Exception as exc:  # any load failure is corruption
                silent = True
                detail = str(exc)
        # A crash strictly before the manifest rename must not leave a
        # committed image behind — that would mean the commit point leaked.
        post_commit = {f"crash:{p}" for p in _POST_COMMIT_POINTS}
        if crashed and fault not in post_commit:
            silent = True
            detail = detail or "pre-commit crash left a committed image"
    return CrashOutcome(
        fault=fault,
        crashed=crashed,
        classification=classification,
        loaded=loaded,
        silent_corruption=silent,
        detail=detail,
    )


def run_crash_matrix(
    make_suspended: "callable", root: str
) -> list[CrashOutcome]:
    """Run the full fault matrix; returns one outcome per fault.

    ``make_suspended()`` must return a fresh ``(sq, state_store)`` pair —
    fresh so each variant's save sees identical inputs regardless of what
    earlier variants did. Faults are enumerated from a clean recorder run,
    then each crash point and each torn-write label gets its own image
    root under ``root``.
    """
    sq, store = make_suspended()
    points, torn_labels = enumerate_faults(
        sq, store, os.path.join(root, "probe")
    )
    outcomes: list[CrashOutcome] = []
    for index, point in enumerate(points):
        sq, store = make_suspended()
        outcomes.append(
            run_one_fault(
                sq,
                store,
                os.path.join(root, f"crash-{index:02d}"),
                FaultInjector.crashing_at(point),
                fault=f"crash:{point}",
            )
        )
    for index, label in enumerate(torn_labels):
        sq, store = make_suspended()
        outcomes.append(
            run_one_fault(
                sq,
                store,
                os.path.join(root, f"torn-{index:02d}"),
                FaultInjector.tearing(label),
                fault=f"torn:{label}",
            )
        )
    return outcomes
