"""On-disk layout and commit protocol for durable suspend images.

One image is one directory under the image root::

    <root>/<image_id>/
        blob-0000.bin     # one JSON-encoded payload per DumpHandle
        blob-0001.bin
        control.json      # the SuspendedQuery control record
        MANIFEST.json     # written last; its rename IS the commit

Every file is written with the same discipline: write to ``<name>.tmp``,
flush, ``fsync``, atomically rename over the final name, then ``fsync``
the directory so the rename itself is durable. The manifest is written
*after* every blob and the control record, so its presence marks a
committed image: a crash anywhere earlier leaves a directory without a
manifest (a *torn* image the recovery scan quarantines), and a crash
after the rename leaves a complete, verifiable image.

The manifest records a SHA-256 checksum and byte size for every file, the
format version, and caller-supplied metadata, so a committed image can be
validated end to end before any of it is trusted (the discipline of
checksummed checkpoint images in main-memory recovery literature).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Optional

from repro.common.errors import ReproError
from repro.durability.faults import FaultInjector, InjectedCrash

MANIFEST_NAME = "MANIFEST.json"
CONTROL_NAME = "control.json"
#: Control-record filename for codec-v2 (binary) images.
CONTROL_NAME_V2 = "control.bin"
BLOB_PREFIX = "blob-"
BLOB_SUFFIX = ".bin"
TMP_SUFFIX = ".tmp"
QUARANTINE_DIR = "quarantine"
#: Shard-set commit-protocol files (see ``repro.shard.manifest``): a
#: shard-set directory groups N per-shard images plus channel state into
#: one atomic unit. ``CHANNELS_NAME`` is written first, ``SHARDSET_NAME``
#: last — its rename is the global commit point.
SHARDSET_NAME = "SHARDSET.json"
CHANNELS_NAME = "CHANNELS.json"

#: Version of the directory layout + manifest schema.
LAYOUT_VERSION = 1


class ImageFormatError(ReproError):
    """Raised when an image directory fails validation."""


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def blob_filename(index: int) -> str:
    return f"{BLOB_PREFIX}{index:04d}{BLOB_SUFFIX}"


def is_image_file(name: str) -> bool:
    """Whether ``name`` is a file the commit protocol writes (final form)."""
    return name in (MANIFEST_NAME, CONTROL_NAME, CONTROL_NAME_V2) or (
        name.startswith(BLOB_PREFIX) and name.endswith(BLOB_SUFFIX)
    )


def fsync_dir(path: str) -> None:
    """Make directory-entry changes (renames, creates) durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(
    directory: str,
    name: str,
    data: bytes,
    injector: Optional[FaultInjector] = None,
) -> None:
    """Write ``data`` to ``directory/name`` via tmp + fsync + rename.

    Crash points exposed to the injector, in order:

    - ``before:<name>`` — nothing written yet;
    - a torn-write opportunity on ``<name>`` (half the bytes reach the
      temp file, then the crash);
    - ``written:<name>`` — temp file durable, rename not yet done;
    - ``renamed:<name>`` — file committed under its final name.
    """
    injector = injector or FaultInjector()
    injector.point(f"before:{name}")
    tmp_path = os.path.join(directory, name + TMP_SUFFIX)
    final_path = os.path.join(directory, name)
    torn = injector.wants_torn(name)
    payload = data[: max(1, len(data) // 2)] if torn else data
    with open(tmp_path, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    if torn:
        # The crash struck mid-write: the partial temp file stays behind.
        raise InjectedCrash(f"torn:{name}")
    injector.point(f"written:{name}")
    os.replace(tmp_path, final_path)
    fsync_dir(directory)
    injector.point(f"renamed:{name}")


def atomic_write_stream(
    directory: str,
    name: str,
    producer: "Callable[[Callable[[bytes], None]], None]",
    injector: Optional[FaultInjector] = None,
) -> tuple[str, int]:
    """Stream-write ``directory/name`` with the atomic discipline.

    The streaming sibling of :func:`atomic_write` for codec-v2 files:
    ``producer(sink)`` pushes chunks (stream magic, then frames) into the
    sink as it encodes, so peak memory stays bounded by one chunk, and
    the SHA-256 the manifest needs is folded in on the way through.
    Returns ``(sha256_hex, total_bytes)``.

    The injector sees the same crash points as :func:`atomic_write`
    (``before:``/``written:``/``renamed:``) plus the same per-file torn
    label; a torn write here truncates mid-chunk — i.e. *inside* a v2
    frame — leaving a partial frame whose CRC cannot verify.
    """
    injector = injector or FaultInjector()
    injector.point(f"before:{name}")
    tmp_path = os.path.join(directory, name + TMP_SUFFIX)
    final_path = os.path.join(directory, name)
    torn = injector.wants_torn(name)
    digest = hashlib.sha256()
    total = 0
    with open(tmp_path, "wb") as fh:

        def sink(chunk: bytes) -> None:
            nonlocal total
            if torn:
                # The crash struck mid-write: a prefix of this chunk —
                # half a frame — reaches the file, then the process
                # dies. The partial temp file stays behind.
                fh.write(chunk[: max(1, len(chunk) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
                raise InjectedCrash(f"torn:{name}")
            fh.write(chunk)
            digest.update(chunk)
            total += len(chunk)

        producer(sink)
        if torn:
            # The producer finished without offering a chunk to tear
            # (empty stream); tear as an empty partial file.
            raise InjectedCrash(f"torn:{name}")
        fh.flush()
        os.fsync(fh.fileno())
    injector.point(f"written:{name}")
    os.replace(tmp_path, final_path)
    fsync_dir(directory)
    injector.point(f"renamed:{name}")
    return digest.hexdigest(), total


def dump_json(value: Any) -> bytes:
    """Deterministic JSON bytes (sorted keys, no float mangling)."""
    return json.dumps(value, sort_keys=True, indent=1).encode("utf-8")


def load_json(path: str) -> Any:
    with open(path, "rb") as fh:
        data = fh.read()
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ImageFormatError(f"unreadable JSON in {path}: {exc}") from exc


def read_file_checked(directory: str, name: str, manifest: dict) -> bytes:
    """Read a manifested file, verifying its size and checksum."""
    entry = manifest.get("files", {}).get(name)
    if entry is None:
        raise ImageFormatError(f"manifest has no entry for {name!r}")
    path = os.path.join(directory, name)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError as exc:
        raise ImageFormatError(f"missing image file {name!r}") from exc
    if len(data) != entry["bytes"]:
        raise ImageFormatError(
            f"{name!r}: size {len(data)} != manifested {entry['bytes']}"
        )
    digest = sha256_hex(data)
    if digest != entry["sha256"]:
        raise ImageFormatError(f"{name!r}: checksum mismatch")
    return data


def validate_manifest_dict(manifest: Any) -> None:
    """Structural checks on a parsed manifest (raises on problems)."""
    if not isinstance(manifest, dict):
        raise ImageFormatError("manifest is not a JSON object")
    version = manifest.get("layout_version")
    if version != LAYOUT_VERSION:
        raise ImageFormatError(
            f"unsupported layout version {version!r} "
            f"(this build reads version {LAYOUT_VERSION})"
        )
    for field in ("image_id", "files", "blobs", "control_file"):
        if field not in manifest:
            raise ImageFormatError(f"manifest lacks required field {field!r}")
    # codec_version is absent from images written before codec v2 existed;
    # absence means the v1 tagged-JSON codec.
    codec_version = manifest.get("codec_version", 1)
    if codec_version not in (1, 2):
        raise ImageFormatError(
            f"unsupported codec version {codec_version!r} "
            "(this build reads versions 1 and 2)"
        )
    base = manifest.get("base_image_id")
    if base is not None and not isinstance(base, str):
        raise ImageFormatError("malformed base_image_id (must be a string)")
    for name, entry in manifest["files"].items():
        if not isinstance(entry, dict) or not {"sha256", "bytes"} <= set(entry):
            raise ImageFormatError(f"malformed file entry for {name!r}")
    for blob in manifest["blobs"]:
        if not isinstance(blob, dict) or "key" not in blob:
            raise ImageFormatError("malformed blob entry in manifest")
        if "file" not in blob and "ref" not in blob:
            raise ImageFormatError(
                f"blob {blob.get('key')!r} has neither a local file nor a "
                "base-chain reference"
            )


def manifest_codec_version(manifest: dict) -> int:
    """Codec version of a validated manifest (absence means v1)."""
    return manifest.get("codec_version", 1)
