"""Durable suspend images: on-disk persistence and crash recovery.

The rest of the system suspends and resumes queries against a *simulated*
disk inside one process. This package gives a suspended query a durable,
versioned, checksummed on-disk form — the suspend image — so it survives
process death and can be resumed by a different interpreter (the paper's
grid-migration and maintenance scenarios, taken to their logical end).

Layers, bottom up:

- :mod:`~repro.durability.faults` — crash-point hooks and torn-write
  injection, threaded through every file operation;
- :mod:`~repro.durability.codec` — stable tagged-JSON codecs for the
  SuspendedQuery control record and plan specs (``FORMAT_VERSION``);
- :mod:`~repro.durability.codec2` — the v2 binary columnar codec
  (typed column segments, string interning, CRC'd zlib frames,
  streaming chunked writes), selected per image via ``codec_version``;
- :mod:`~repro.durability.format` — the directory layout, the atomic
  tmp+fsync+rename write discipline, and manifest checksums
  (``LAYOUT_VERSION``);
- :mod:`~repro.durability.store` — the :class:`ImageStore`: save, load,
  list, validate, GC, and the startup recovery scan with quarantine;
- :mod:`~repro.durability.harness` — the crash-matrix harness proving no
  injected fault can produce silent corruption;
- :mod:`~repro.durability.recipes` — deterministic database+plan builders
  so a fresh process can rebuild the base tables an image expects.
"""

from repro.durability.codec import FORMAT_VERSION, CodecError
from repro.durability.codec2 import CODEC_V1, CODEC_V2, V2_FORMAT_VERSION
from repro.durability.faults import (
    FaultInjector,
    InjectedCrash,
    crash_variants,
    torn_variants,
)
from repro.durability.format import LAYOUT_VERSION, ImageFormatError
from repro.durability.harness import (
    CrashOutcome,
    enumerate_faults,
    run_crash_matrix,
    run_delta_crash_matrix,
)
from repro.durability.recipes import RECIPES, build_recipe
from repro.durability.store import (
    ImageInfo,
    ImageNotFoundError,
    ImageStore,
    RecoveryReport,
    SaveRequest,
)

__all__ = [
    "FORMAT_VERSION",
    "V2_FORMAT_VERSION",
    "CODEC_V1",
    "CODEC_V2",
    "LAYOUT_VERSION",
    "CodecError",
    "ImageFormatError",
    "ImageNotFoundError",
    "FaultInjector",
    "InjectedCrash",
    "crash_variants",
    "torn_variants",
    "ImageStore",
    "ImageInfo",
    "RecoveryReport",
    "SaveRequest",
    "CrashOutcome",
    "enumerate_faults",
    "run_crash_matrix",
    "run_delta_crash_matrix",
    "RECIPES",
    "build_recipe",
]
