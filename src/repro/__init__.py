"""Reproduction of "Query Suspend and Resume" (SIGMOD 2007).

This package implements, from scratch, the paper's full system:

- a simulated storage manager with deterministic I/O cost accounting
  (:mod:`repro.storage`),
- an iterator-based relational query engine with the extended iterator
  interface of the paper (``SignContract`` / ``Suspend`` / ``Suspend(Ctr)`` /
  ``Resume``) and all the physical operators of Section 4
  (:mod:`repro.engine`),
- the paper's core contribution: asynchronous semantics-driven
  checkpointing, contracts, the contract graph, the DumpState / GoBack
  suspend strategies, and the mixed-integer-programming suspend-plan
  optimizer (:mod:`repro.core`),
- the Section 7 suspend-aware analytical planner (:mod:`repro.planning`),
- a multi-query scheduler serving concurrent sessions under a memory
  budget with suspend-resume / kill-restart / wait pressure policies
  (:mod:`repro.service`),
- durable suspend images: a versioned, checksummed on-disk format with
  atomic commit, a startup recovery scan, and crash-fault injection, so
  suspended queries survive process death (:mod:`repro.durability`),
- the paper's workloads and an experiment harness regenerating every table
  and figure of the evaluation (:mod:`repro.workloads`, :mod:`repro.harness`).

Quickstart — one suspend/resume cycle::

    from repro import (
        Database, FilterSpec, NLJSpec, QuerySession, ScanSpec,
        SuspendSpec, SuspendStrategy,
    )
    from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
    from repro.relational.expressions import EquiJoinCondition, UniformSelect

    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(2_000, seed=1))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(400, seed=2))
    plan = NLJSpec(
        outer=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5)),
        inner=ScanSpec("S"),
        condition=EquiJoinCondition(0, 0, modulus=100),
        buffer_tuples=300,
    )
    session = QuerySession(db, plan)
    session.execute(max_rows=100)
    sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
    resumed = QuerySession.resume(db, sq)
    rest = resumed.execute()

Quickstart — serving over HTTP with continuation tokens::

    python -m repro.cli serve-http --port 8351   # then see docs/SERVING.md

Quickstart — serving a multi-query arrival trace::

    from repro import QueryScheduler
    from repro.workloads import mixed_priority_trace

    workload = mixed_priority_trace(scale=4, seed=1)
    stats = QueryScheduler.run_workload(workload, policy="suspend-resume")
    print(stats.as_dict())
"""

from repro.storage.database import Database
from repro.storage.disk import IOCostModel, SimulatedDisk, VirtualClock
from repro.core.lifecycle import (
    ExecutionResult,
    QuerySession,
    QueryStatus,
    SuspendOptions,  # deprecated alias of SuspendSpec (warns on use)
    SuspendSpec,
    SuspendStrategy,
)
from repro.engine.config import EngineConfig
from repro.engine.plan import (
    DupElimSpec,
    FilterSpec,
    GroupAggSpec,
    HashGroupAggSpec,
    HybridHashJoinSpec,
    IndexNLJSpec,
    IndexScanSpec,
    MergeJoinSpec,
    NLJSpec,
    PlanSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
    SortSpec,
)
from repro.core.strategies import Strategy, SuspendPlan
from repro.core.suspended_query import SuspendedQuery
from repro.durability.store import ImageInfo, ImageStore, RecoveryReport
from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_tracer,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from repro.serve.service import QueryService, ServeConfig
from repro.serve.tokens import (
    ContinuationToken,
    TokenError,
    TokenExpiredError,
    TokenManager,
    TokenRedeemedError,
)
from repro.service.core import ExecutorCore
from repro.service.scheduler import QueryScheduler, SchedulerConfig
from repro.service.stats import QueryStats, SchedulerStats
from repro.service.trace import ArrivalTrace, QueryArrival, Workload
from repro.shard import (
    GlobalSuspendReport,
    PartitionSpec,
    ShardCoordinator,
    ShardedCatalog,
)

__version__ = "1.0.0"

__all__ = [
    "ArrivalTrace",
    "ContinuationToken",
    "Database",
    "DupElimSpec",
    "ExecutorCore",
    "EngineConfig",
    "ExecutionResult",
    "FilterSpec",
    "GlobalSuspendReport",
    "GroupAggSpec",
    "HashGroupAggSpec",
    "HybridHashJoinSpec",
    "IOCostModel",
    "ImageInfo",
    "ImageStore",
    "IndexNLJSpec",
    "IndexScanSpec",
    "MergeJoinSpec",
    "MetricsRegistry",
    "NLJSpec",
    "PartitionSpec",
    "PlanSpec",
    "ProjectSpec",
    "QueryArrival",
    "QueryScheduler",
    "QueryService",
    "QuerySession",
    "QueryStats",
    "QueryStatus",
    "RecoveryReport",
    "ScanSpec",
    "SchedulerConfig",
    "SchedulerStats",
    "ServeConfig",
    "ShardCoordinator",
    "ShardedCatalog",
    "SimpleHashJoinSpec",
    "SimulatedDisk",
    "SortSpec",
    "Strategy",
    "SuspendOptions",
    "SuspendPlan",
    "SuspendSpec",
    "SuspendStrategy",
    "SuspendedQuery",
    "TokenError",
    "TokenExpiredError",
    "TokenManager",
    "TokenRedeemedError",
    "Tracer",
    "VirtualClock",
    "Workload",
    "__version__",
    "current_tracer",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
