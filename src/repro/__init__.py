"""Reproduction of "Query Suspend and Resume" (SIGMOD 2007).

This package implements, from scratch, the paper's full system:

- a simulated storage manager with deterministic I/O cost accounting
  (:mod:`repro.storage`),
- an iterator-based relational query engine with the extended iterator
  interface of the paper (``SignContract`` / ``Suspend`` / ``Suspend(Ctr)`` /
  ``Resume``) and all the physical operators of Section 4
  (:mod:`repro.engine`),
- the paper's core contribution: asynchronous semantics-driven
  checkpointing, contracts, the contract graph, the DumpState / GoBack
  suspend strategies, and the mixed-integer-programming suspend-plan
  optimizer (:mod:`repro.core`),
- the Section 7 suspend-aware analytical planner (:mod:`repro.planning`),
- the paper's workloads and an experiment harness regenerating every table
  and figure of the evaluation (:mod:`repro.workloads`, :mod:`repro.harness`).

Quickstart::

    from repro import QuerySession
    from repro.workloads import build_nlj_s

    db, plan = build_nlj_s(selectivity=0.5)
    session = QuerySession(db, plan)
    result = session.execute(suspend_when=lambda stats: stats.root_rows >= 100)
    sq = session.suspend(strategy="lp")
    resumed = QuerySession.resume(db, sq)
    rest = resumed.execute()
"""

from repro.storage.database import Database
from repro.storage.disk import IOCostModel, SimulatedDisk, VirtualClock
from repro.core.lifecycle import ExecutionResult, QuerySession, QueryStatus
from repro.core.strategies import Strategy, SuspendPlan
from repro.core.suspended_query import SuspendedQuery

__version__ = "1.0.0"

__all__ = [
    "Database",
    "ExecutionResult",
    "IOCostModel",
    "QuerySession",
    "QueryStatus",
    "SimulatedDisk",
    "Strategy",
    "SuspendPlan",
    "SuspendedQuery",
    "VirtualClock",
    "__version__",
]
