"""The paper's experimental workloads (Section 6), scaled parametrically.

All builders default to ``scale=100``: table sizes and buffer sizes are
the paper's divided by 100, which preserves every ratio the experiments
depend on (buffer-fill fraction, selectivity, state size relative to
table size) while keeping pure-Python execution fast. Costs are measured
in simulated I/O time units, so the absolute scale only changes units,
never shapes (see DESIGN.md section 2).
"""

from repro.workloads.plans import (
    TRACES,
    build_complex_plan,
    build_left_deep_nlj,
    build_nlj_chain,
    build_nlj_s,
    build_skewed_nlj_s,
    build_smj_s,
    burst_trace,
    mixed_priority_trace,
)

__all__ = [
    "TRACES",
    "build_complex_plan",
    "build_left_deep_nlj",
    "build_nlj_chain",
    "build_nlj_s",
    "build_skewed_nlj_s",
    "build_smj_s",
    "burst_trace",
    "mixed_priority_trace",
]
