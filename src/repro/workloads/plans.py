"""Builders for the paper's query plans.

Each builder returns ``(db, plan_spec)`` — a freshly populated database
and the plan to run on it. Operator labels are stable so experiments can
address them (e.g. ``rt.op_named("nlj")``).

Paper parameters (Section 6.1/6.2), divided by ``scale``:

- NLJ_S (Figure 6): block NLJ over filter(scan R) with scan T inner;
  R has 2.2M tuples, the outer buffer holds 200,000.
- SMJ_S (Figure 7): merge join of sort(filter(scan R)) and sort(scan T);
  sort buffers hold 200,000 tuples.
- Figure 12 variant: R has ~3M tuples with skewed selectivity
  (0.1 for the first two-thirds, 0.9 after; effective ~0.385).
- Complex plan (Figure 11): 10 operators mixing NLJs, a merge join,
  sorts, a filter, and scans; R has 2.2M tuples, filter selectivity 0.1,
  NLJ/sort buffers 200,000.
- Left-deep NLJ plans (Figure 14 / Table 2): chains of block NLJs with
  scans at the leaves.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from repro.core.lifecycle import QuerySession, QueryStatus
from repro.engine.plan import (
    FilterSpec,
    MergeJoinSpec,
    NLJSpec,
    PlanSpec,
    ScanSpec,
    SortSpec,
)
from repro.service.trace import ArrivalTrace, Workload
from repro.relational.datagen import (
    BASE_SCHEMA,
    FIGURE12_SKEW,
    SKEW_THRESHOLD,
    generate_skewed_table,
    generate_uniform_table,
)
from repro.relational.expressions import (
    ColumnCompare,
    EquiJoinCondition,
    UniformSelect,
)
from repro.storage.database import Database

#: Paper-scale constants (before division by ``scale``).
PAPER_R_TUPLES = 2_200_000
PAPER_SKEWED_R_TUPLES = 3_000_000
PAPER_BUFFER_TUPLES = 200_000
PAPER_INNER_TUPLES = 220_000


def _scaled(value: int, scale: int) -> int:
    return max(1, value // scale)


def build_nlj_s(
    selectivity: float,
    scale: int = 100,
    seed: int = 7,
    inner_tuples: Optional[int] = None,
) -> tuple[Database, PlanSpec]:
    """The NLJ_S plan of Figure 6 at 1/scale of the paper's size."""
    db = Database()
    r_n = _scaled(PAPER_R_TUPLES, scale)
    t_n = _scaled(
        inner_tuples if inner_tuples is not None else PAPER_INNER_TUPLES, scale
    )
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_n, seed=seed))
    db.create_table("T", BASE_SCHEMA, generate_uniform_table(t_n, seed=seed + 1))
    db.catalog.set_predicate_selectivity("R", "uniform", selectivity)
    plan = NLJSpec(
        outer=FilterSpec(
            ScanSpec("R", label="scan_R"),
            UniformSelect(1, selectivity),
            label="filter",
        ),
        inner=ScanSpec("T", label="scan_T"),
        condition=EquiJoinCondition(0, 0, modulus=1000),
        buffer_tuples=_scaled(PAPER_BUFFER_TUPLES, scale),
        label="nlj",
    )
    return db, plan


def build_smj_s(
    selectivity: float, scale: int = 100, seed: int = 11
) -> tuple[Database, PlanSpec]:
    """The SMJ_S plan of Figure 7 at 1/scale of the paper's size."""
    db = Database()
    r_n = _scaled(PAPER_R_TUPLES, scale)
    t_n = _scaled(PAPER_R_TUPLES, scale)
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_n, seed=seed))
    db.create_table("T", BASE_SCHEMA, generate_uniform_table(t_n, seed=seed + 1))
    db.catalog.set_predicate_selectivity("R", "uniform", selectivity)
    buffer = _scaled(PAPER_BUFFER_TUPLES, scale)
    plan = MergeJoinSpec(
        left=SortSpec(
            FilterSpec(
                ScanSpec("R", label="scan_R"),
                UniformSelect(1, selectivity),
                label="filter",
            ),
            key_columns=(0,),
            buffer_tuples=buffer,
            label="sort_R",
        ),
        right=SortSpec(
            ScanSpec("T", label="scan_T"),
            key_columns=(0,),
            buffer_tuples=buffer,
            label="sort_T",
        ),
        condition=EquiJoinCondition(0, 0),
        label="mj",
    )
    return db, plan


def build_skewed_nlj_s(
    scale: int = 100, seed: int = 13
) -> tuple[Database, PlanSpec]:
    """The Figure 12 setup: NLJ_S over the skewed 3M-tuple table.

    The filter keeps rows with ``u < 0.5``; the generator arranges ``u``
    so the first two-thirds of the table pass at rate 0.1 and the rest at
    0.9. The catalog records only the table-level effective selectivity,
    which is all the static optimizer gets to see.
    """
    db = Database()
    r_n = _scaled(PAPER_SKEWED_R_TUPLES, scale)
    t_n = _scaled(PAPER_INNER_TUPLES, scale)
    db.create_table(
        "R", BASE_SCHEMA, generate_skewed_table(r_n, FIGURE12_SKEW, seed=seed)
    )
    db.create_table("T", BASE_SCHEMA, generate_uniform_table(t_n, seed=seed + 1))
    effective = sum(r.fraction * r.selectivity for r in FIGURE12_SKEW)
    db.catalog.set_predicate_selectivity("R", "column_compare", effective)
    plan = NLJSpec(
        outer=FilterSpec(
            ScanSpec("R", label="scan_R"),
            ColumnCompare(1, "<", SKEW_THRESHOLD),
            label="filter",
        ),
        inner=ScanSpec("T", label="scan_T"),
        condition=EquiJoinCondition(0, 0, modulus=1000),
        buffer_tuples=_scaled(PAPER_BUFFER_TUPLES, scale),
        label="nlj",
    )
    return db, plan


def build_complex_plan(
    scale: int = 100,
    selectivity: float = 0.1,
    seed: int = 17,
) -> tuple[Database, PlanSpec]:
    """The 10-operator complex plan of Figure 11.

    Shape::

        NLJ0( NLJ1( Filter(Scan R), Scan T ),
              Sort( MJ( Sort(Scan S), Scan U ) ) )

    Ten operators: two block NLJs, a sort-merge join, two external sorts,
    a selectivity-0.1 filter, and four scans, with the paper's R size and
    200,000-tuple buffers (scaled). NLJ1's heap state is expensive to
    recompute (it sits right above the selective filter) while NLJ0's is
    cheap (its input replays from NLJ1's buffer and a small scan), so —
    as in the paper — the optimal suspend plan is a *hybrid*, not either
    purist extreme.
    """
    db = Database()
    r_n = _scaled(PAPER_R_TUPLES, scale)
    other_n = _scaled(PAPER_INNER_TUPLES, scale)
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_n, seed=seed))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(other_n, seed=seed + 1))
    db.create_table("T", BASE_SCHEMA, generate_uniform_table(other_n, seed=seed + 2))
    # U is stored in key order so the merge join can scan it directly.
    db.create_table(
        "U",
        BASE_SCHEMA,
        generate_uniform_table(other_n, seed=seed + 3, shuffle_keys=False),
    )
    db.catalog.set_predicate_selectivity("R", "uniform", selectivity)
    buffer = _scaled(PAPER_BUFFER_TUPLES, scale)
    nlj1 = NLJSpec(
        outer=FilterSpec(
            ScanSpec("R", label="scan_R"),
            UniformSelect(1, selectivity),
            label="filter",
        ),
        inner=ScanSpec("T", label="scan_T"),
        condition=EquiJoinCondition(0, 0, modulus=500),
        buffer_tuples=buffer,
        label="nlj1",
    )
    mj = MergeJoinSpec(
        left=SortSpec(
            ScanSpec("S", label="scan_S"),
            key_columns=(0,),
            buffer_tuples=buffer,
            label="sort_S",
        ),
        right=ScanSpec("U", label="scan_U"),
        condition=EquiJoinCondition(0, 0),
        label="mj",
    )
    nlj0 = NLJSpec(
        outer=nlj1,
        inner=SortSpec(mj, key_columns=(0,), buffer_tuples=buffer, label="sort_M"),
        condition=EquiJoinCondition(0, 0, modulus=500),
        buffer_tuples=buffer,
        label="nlj0",
    )
    return db, nlj0


def build_left_deep_nlj(
    buffer_tuples: Sequence[int] = (50_000, 100_000, 200_000),
    selectivity: float = 0.1,
    scale: int = 100,
    seed: int = 19,
) -> tuple[Database, PlanSpec]:
    """The Figure 14 plan: a left-deep chain of block NLJs over a filter.

    ``buffer_tuples`` gives each NLJ's outer buffer size bottom-up (the
    paper uses "different outer buffer sizes").
    """
    db = Database()
    r_n = _scaled(PAPER_R_TUPLES, scale)
    inner_n = _scaled(PAPER_INNER_TUPLES, scale)
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_n, seed=seed))
    db.catalog.set_predicate_selectivity("R", "uniform", selectivity)
    current: PlanSpec = FilterSpec(
        ScanSpec("R", label="scan_R"), UniformSelect(1, selectivity), label="filter"
    )
    key_col = 0
    for level, buf in enumerate(buffer_tuples):
        inner_name = f"I{level}"
        db.create_table(
            inner_name,
            BASE_SCHEMA,
            generate_uniform_table(inner_n, seed=seed + 1 + level),
        )
        current = NLJSpec(
            outer=current,
            inner=ScanSpec(inner_name, label=f"scan_{inner_name}"),
            condition=EquiJoinCondition(key_col, 0, modulus=400),
            buffer_tuples=_scaled(buf, scale),
            label=f"nlj{level}",
        )
        key_col = 0  # join on the leftmost column of the composite row
    return db, current


def build_nlj_chain(
    num_operators: int, scale: int = 2000, seed: int = 23
) -> tuple[Database, PlanSpec]:
    """Left-deep NLJ chains for Table 2 (optimizer timing).

    A plan with k operators has (k-1)/2 NLJ operators in a chain with
    table scans at the leaves — the paper's worst case for the number of
    MIP variables and constraints. ``num_operators`` must be odd.
    """
    if num_operators < 3 or num_operators % 2 == 0:
        raise ValueError("num_operators must be an odd integer >= 3")
    num_nljs = (num_operators - 1) // 2
    db = Database()
    base_n = _scaled(PAPER_R_TUPLES, scale)
    db.create_table("T0", BASE_SCHEMA, generate_uniform_table(base_n, seed=seed))
    current: PlanSpec = ScanSpec("T0", label="scan_T0")
    for level in range(num_nljs):
        name = f"T{level + 1}"
        db.create_table(
            name,
            BASE_SCHEMA,
            generate_uniform_table(base_n, seed=seed + 1 + level),
        )
        current = NLJSpec(
            outer=current,
            inner=ScanSpec(name, label=f"scan_{name}"),
            condition=EquiJoinCondition(0, 0, modulus=50),
            buffer_tuples=max(2, base_n // 4),
            label=f"nlj{level}",
        )
    return db, current


# ----------------------------------------------------------------------
# Arrival traces for the scheduler (repro.service)
# ----------------------------------------------------------------------

#: Section 1 trace sizes at ``scale=1`` (divided by ``scale``).
MIXED_FACTS_TUPLES = 20_000
MIXED_DIMS_TUPLES = 2_000
MIXED_HOT_TUPLES = 800
MIXED_BUFFER_TUPLES = 1_000


def _mixed_db_factory(scale: int, seed: int) -> Callable[[], Database]:
    def factory() -> Database:
        db = Database()
        db.create_table(
            "facts",
            BASE_SCHEMA,
            generate_uniform_table(_scaled(MIXED_FACTS_TUPLES, scale), seed=seed),
        )
        db.create_table(
            "dims",
            BASE_SCHEMA,
            generate_uniform_table(
                _scaled(MIXED_DIMS_TUPLES, scale), seed=seed + 1
            ),
        )
        db.create_table(
            "hot",
            BASE_SCHEMA,
            generate_uniform_table(
                _scaled(MIXED_HOT_TUPLES, scale), seed=seed + 2
            ),
        )
        return db

    return factory


def mixed_q_lo_plan(scale: int = 1) -> PlanSpec:
    """The long-running analytical join of the Section 1 scenario."""
    return NLJSpec(
        outer=FilterSpec(
            ScanSpec("facts", label="scan_facts"),
            UniformSelect(1, 0.2),
            label="filter",
        ),
        inner=ScanSpec("dims", label="scan_dims"),
        condition=EquiJoinCondition(0, 0, modulus=500),
        buffer_tuples=_scaled(MIXED_BUFFER_TUPLES, scale),
        label="q_lo_join",
    )


def mixed_q_hi_plan(scale: int = 1) -> PlanSpec:
    """The high-priority query: a quick sorted filter over ``hot``."""
    return SortSpec(
        FilterSpec(ScanSpec("hot"), UniformSelect(1, 0.5)),
        key_columns=(0,),
        buffer_tuples=_scaled(MIXED_BUFFER_TUPLES, scale),
        label="q_hi_sort",
    )


def _solo_profile(
    db: Database, plan: PlanSpec, quantum: int = 512
) -> tuple[float, int]:
    """(completion time, peak heap bytes) of an uninterrupted solo run."""
    session = QuerySession(db, plan)
    start = db.now
    peak = 0
    while True:
        result = session.execute(max_rows=quantum, collect=False)
        peak = max(peak, session.memory_in_use())
        if result.status is QueryStatus.COMPLETED:
            break
    session.close()
    return db.now - start, peak


def mixed_priority_trace(
    scale: int = 4,
    seed: int = 1,
    hi_arrival_fraction: float = 0.45,
) -> Workload:
    """The paper's Section 1 motivating scenario as an arrival trace.

    Q_lo (priority 0) arrives at time 0; Q_hi (priority 10) arrives at
    ``hi_arrival_fraction`` of Q_lo's calibrated solo runtime, when Q_lo
    is well into its work and holding its outer buffer. The memory budget
    is half of Q_lo's peak heap — guaranteeing pressure at Q_hi's arrival
    — and the suspend budget is 10% of Q_lo's solo runtime, mirroring the
    "small suspend budget" of the example this trace replaces.
    """
    factory = _mixed_db_factory(scale, seed)
    solo_time, peak = _solo_profile(factory(), mixed_q_lo_plan(scale))
    trace = ArrivalTrace(name="mixed")
    trace.add("q_lo", mixed_q_lo_plan(scale), arrival_time=0.0, priority=0)
    trace.add(
        "q_hi",
        mixed_q_hi_plan(scale),
        arrival_time=hi_arrival_fraction * solo_time,
        priority=10,
    )
    return Workload(
        name="mixed",
        db_factory=factory,
        trace=trace,
        memory_budget=max(1, peak // 2),
        suspend_budget=0.1 * solo_time,
        description=(
            "Section 1: high-priority Q_hi preempts the memory of the "
            "long-running analytical Q_lo"
        ),
    )


def burst_trace(
    scale: int = 4,
    seed: int = 1,
    num_queries: int = 5,
) -> Workload:
    """A staggered burst of mixed-priority queries over shared tables.

    Arrivals are spread deterministically (seeded) over the first 80% of
    the calibrated base runtime with priorities alternating 0/5/10, so a
    scheduler run exercises admission, repeated victim selection, and
    resume-under-subsequent-pressure — the paths the two-query mixed
    trace cannot reach.
    """
    factory = _mixed_db_factory(scale, seed)
    solo_time, peak = _solo_profile(factory(), mixed_q_lo_plan(scale))
    rng = random.Random(seed)
    trace = ArrivalTrace(name="burst")
    trace.add("q_0", mixed_q_lo_plan(scale), arrival_time=0.0, priority=0)
    for k in range(1, max(2, num_queries)):
        if k % 3 == 1:
            plan = mixed_q_hi_plan(scale)
            priority = 10
        elif k % 3 == 2:
            plan = SortSpec(
                FilterSpec(
                    ScanSpec("dims"), UniformSelect(1, 0.4 + 0.1 * (k % 2))
                ),
                key_columns=(0,),
                buffer_tuples=_scaled(MIXED_BUFFER_TUPLES, scale),
                label=f"sort_dims_{k}",
            )
            priority = 5
        else:
            plan = NLJSpec(
                outer=FilterSpec(
                    ScanSpec("hot"), UniformSelect(1, 0.3), label=f"f_{k}"
                ),
                inner=ScanSpec("dims"),
                condition=EquiJoinCondition(0, 0, modulus=300),
                buffer_tuples=_scaled(MIXED_BUFFER_TUPLES, scale),
                label=f"nlj_hot_{k}",
            )
            priority = 0
        trace.add(
            f"q_{k}",
            plan,
            arrival_time=rng.uniform(0.05, 0.8) * solo_time,
            priority=priority,
        )
    return Workload(
        name="burst",
        db_factory=factory,
        trace=trace,
        memory_budget=max(1, peak // 2),
        suspend_budget=0.1 * solo_time,
        description="staggered mixed-priority burst over shared tables",
    )


def sorted_join_plan(scale: int = 1) -> PlanSpec:
    """Block NLJ over an external sort: the canonical repeat-suspend
    victim — during the long emission phase its outer buffer is in
    memory while the sort's unconsumed sublists sit unchanged in the
    state store, so repeat suspends produce small delta images."""
    return NLJSpec(
        outer=SortSpec(
            FilterSpec(
                ScanSpec("facts", label="scan_facts"),
                UniformSelect(1, 0.8),
                label="filter",
            ),
            key_columns=(0,),
            buffer_tuples=_scaled(MIXED_BUFFER_TUPLES, scale),
            label="sort_facts",
        ),
        inner=ScanSpec("dims", label="scan_dims"),
        condition=EquiJoinCondition(0, 0, modulus=500),
        buffer_tuples=_scaled(MIXED_BUFFER_TUPLES, scale),
        label="q_nlj_sort",
    )


def serve_catalog(
    scale: int = 8, seed: int = 1
) -> tuple[Callable[[], Database], dict[str, PlanSpec]]:
    """The HTTP serving layer's named plans plus their database factory.

    The catalog reuses the scheduler workloads' plans over the mixed
    tables, at a default scale small enough that thousands of concurrent
    sessions stay cheap: ``mixed-join`` (the long analytical NLJ),
    ``hot-sort`` (the quick high-priority sort), and ``sorted-join``
    (the repeat-suspend victim whose continuations produce delta
    images). Server and load generator both draw from here so a token
    minted against one process resolves to the same plan in another.
    """
    catalog = {
        "mixed-join": mixed_q_lo_plan(scale),
        "hot-sort": mixed_q_hi_plan(scale),
        "sorted-join": sorted_join_plan(scale),
    }
    return _mixed_db_factory(scale, seed), catalog


def repeat_suspend_trace(
    scale: int = 1,
    seed: int = 1,
    arrival_fractions: tuple[float, ...] = (0.3, 0.6),
) -> Workload:
    """Repeatedly evict one long join over a sorted intermediate.

    The victim is a block NLJ whose outer is an external sort: during the
    (long) emission phase the NLJ holds its outer buffer in memory — so
    memory pressure can evict it — while the sort's unconsumed sublists
    sit unchanged in the state store. Each high-priority arrival forces
    another suspend of the same query, so this is the canonical workload
    for delta spill images: a repeat suspend re-dumps only the in-memory
    buffer and shares the sublist blobs with the previous image.
    """
    factory = _mixed_db_factory(scale, seed)
    victim_plan = sorted_join_plan(scale)
    solo_time, peak = _solo_profile(factory(), victim_plan)
    trace = ArrivalTrace(name="repeat-suspend")
    trace.add("q_nlj_sort", victim_plan, arrival_time=0.0, priority=0)
    for k, fraction in enumerate(arrival_fractions, start=1):
        trace.add(
            f"q_hi_{k}",
            mixed_q_hi_plan(scale),
            arrival_time=fraction * solo_time,
            priority=10,
        )
    return Workload(
        name="repeat-suspend",
        db_factory=factory,
        trace=trace,
        memory_budget=max(1, peak // 2),
        suspend_budget=0.2 * solo_time,
        description=(
            "staggered high-priority arrivals repeatedly evict one "
            "long external sort (the delta-image workload)"
        ),
    )


#: Trace-generator registry (the CLI's ``workload --trace`` choices).
TRACES: dict[str, Callable[..., Workload]] = {
    "mixed": mixed_priority_trace,
    "burst": burst_trace,
    "repeat-suspend": repeat_suspend_trace,
}
