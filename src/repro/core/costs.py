"""Suspend-time cost constants for the Section 5 optimization.

At suspend time we know the exact runtime state of every operator — "the
ideal time to perform this optimization" per the paper. This module walks
the contract graph to enumerate, for every operator i and every potential
GoBack anchor j in anc(i), the *chain link*: which checkpoint would
fulfill the chain, which contract would be enforced, and what the
roll-forward target is. From the links it derives the MIP constants:

- ``d_s[i]`` / ``d_r[i]``: DumpState suspend/resume costs,
- ``g_s[(i, j)]`` / ``g_r[(i, j)]``: GoBack suspend/resume costs,
- ``c[(i, j)]``: the cannot-dump-under-chain-j restriction (the
  operator's latest checkpoint postdates the fulfilling one, or the
  operator is stateless and therefore must propagate the chain).

A missing link (e.g. right after a resume, before the contract graph has
re-formed) simply removes the corresponding x_{i,j} variable from the
optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.errors import ContractError
from repro.core.strategies import PlanTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.base import Operator
    from repro.engine.runtime import Runtime


@dataclass
class ChainLink:
    """How operator ``op_id`` would fulfill a GoBack chain anchored at j.

    ``fresh`` links describe a contract that would be signed at suspend
    time itself (a stream child beneath the anchor): the target is the
    operator's current state, so the roll-forward is empty for stateless
    operators and "rebuild to current" for stateful ones.
    """

    op_id: int
    anchor_id: int
    fulfilling_ckpt_id: Optional[int]
    ckpt_payload: Optional[dict]
    target_control: Optional[dict]
    work_baseline: float
    fresh: bool = False
    enforced_contract_id: Optional[int] = None


@dataclass
class SuspendCostModel:
    """Everything the MIP needs, computed from live runtime state."""

    op_ids: list[int]
    parent: dict[int, int]
    stateful: dict[int, bool]
    has_checkpoint: dict[int, bool]
    d_s: dict[int, float]
    d_r: dict[int, float]
    links: dict[tuple[int, int], ChainLink]
    g_s: dict[tuple[int, int], float]
    g_r: dict[tuple[int, int], float]
    cannot_dump_under: set[tuple[int, int]] = field(default_factory=set)

    def anchors_of(self, op_id: int) -> list[int]:
        """Feasible GoBack anchors for ``op_id`` (the paper's anc(i),
        restricted to chains the contract graph can actually support)."""
        return sorted(j for (i, j) in self.links if i == op_id)

    def ancestors_and_self(self, op_id: int) -> list[int]:
        chain = [op_id]
        current = op_id
        while current in self.parent:
            current = self.parent[current]
            chain.append(current)
        return chain

    def topology(self) -> PlanTopology:
        return PlanTopology(
            parent=dict(self.parent),
            stateful=dict(self.stateful),
            has_checkpoint=dict(self.has_checkpoint),
            cannot_dump_under=frozenset(self.cannot_dump_under),
        )


def build_cost_model(runtime: "Runtime") -> SuspendCostModel:
    """Compute the Section 5 constants from the current runtime state."""
    graph = runtime.graph
    ops = runtime.ops
    root = runtime.root()

    parent = {
        op.op_id: op.parent.op_id for op in ops.values() if op.parent is not None
    }
    stateful = {op.op_id: op.STATEFUL for op in ops.values()}
    has_checkpoint = {
        op.op_id: graph.latest_checkpoint(op.op_id) is not None
        for op in ops.values()
    }

    d_s = {op.op_id: op.estimate_dump_suspend_cost() for op in ops.values()}
    d_r = {op.op_id: op.estimate_dump_resume_cost() for op in ops.values()}

    links: dict[tuple[int, int], ChainLink] = {}

    def descend(op: "Operator", anchor_id: int, link: ChainLink) -> None:
        """Extend chain ``anchor_id`` from ``op`` (whose link is known)
        down to its children."""
        links[(op.op_id, anchor_id)] = link
        stream_ids = {c.op_id for c in op.stream_children()}
        for child in op.children:
            child_link = _child_link(child, anchor_id, op, link, stream_ids)
            if child_link is not None:
                descend(child, anchor_id, child_link)

    def _child_link(child, anchor_id, op, link, stream_ids):
        if child.op_id in stream_ids:
            if link.fresh or link.enforced_contract_id is None:
                return _fresh_link(child, anchor_id)
            contract = graph.contract(link.enforced_contract_id)
            nested = contract.nested.get(child.op_id)
            if nested is None:
                # Contract was migrated to the checkpoint; fall through to
                # the checkpoint's own contract with this child.
                return _ckpt_contract_link(child, anchor_id, link)
            try:
                ckpt = graph.checkpoint(nested.child_ckpt_id)
            except ContractError:
                return None
            return ChainLink(
                op_id=child.op_id,
                anchor_id=anchor_id,
                fulfilling_ckpt_id=ckpt.ckpt_id,
                ckpt_payload=ckpt.payload,
                target_control=nested.control,
                work_baseline=ckpt.work_at,
                enforced_contract_id=nested.contract_id,
            )
        return _ckpt_contract_link(child, anchor_id, link)

    def _ckpt_contract_link(child, anchor_id, link):
        if link.fulfilling_ckpt_id is None:
            return _fresh_link(child, anchor_id)
        try:
            parent_ckpt = graph.checkpoint(link.fulfilling_ckpt_id)
            contract = graph.contract_from(parent_ckpt, child.op_id)
            ckpt = graph.checkpoint(contract.child_ckpt_id)
        except ContractError:
            return None
        return ChainLink(
            op_id=child.op_id,
            anchor_id=anchor_id,
            fulfilling_ckpt_id=ckpt.ckpt_id,
            ckpt_payload=ckpt.payload,
            target_control=contract.control,
            work_baseline=ckpt.work_at,
            enforced_contract_id=contract.contract_id,
        )

    def _fresh_link(child, anchor_id):
        if child.STATEFUL:
            latest = graph.latest_checkpoint(child.op_id)
            if latest is None:
                return None
            return ChainLink(
                op_id=child.op_id,
                anchor_id=anchor_id,
                fulfilling_ckpt_id=latest.ckpt_id,
                ckpt_payload=latest.payload,
                target_control=None,
                work_baseline=latest.work_at,
                fresh=True,
            )
        return ChainLink(
            op_id=child.op_id,
            anchor_id=anchor_id,
            fulfilling_ckpt_id=None,
            ckpt_payload=None,
            target_control=None,
            work_baseline=child.work,
            fresh=True,
        )

    # One chain per potential anchor: every stateful operator with a live
    # checkpoint can start a chain at its own latest checkpoint.
    for op in ops.values():
        if not op.STATEFUL:
            continue
        latest = graph.latest_checkpoint(op.op_id)
        if latest is None:
            continue
        descend(
            op,
            op.op_id,
            ChainLink(
                op_id=op.op_id,
                anchor_id=op.op_id,
                fulfilling_ckpt_id=latest.ckpt_id,
                ckpt_payload=latest.payload,
                target_control=None,
                work_baseline=latest.work_at,
            ),
        )

    g_s: dict[tuple[int, int], float] = {}
    g_r: dict[tuple[int, int], float] = {}
    cannot_dump: set[tuple[int, int]] = set()
    for (i, j), link in links.items():
        op = ops[i]
        g_s[(i, j)] = op.estimate_goback_suspend_cost(link)
        g_r[(i, j)] = op.estimate_goback_resume_cost(link)
        if i == j:
            continue
        if not op.STATEFUL:
            # Stateless operators hold no heap state; they must propagate
            # any chain they are part of — except through a *fresh* link
            # (a contract that would be signed at the suspend moment
            # itself), where dumping records the identical position.
            if not link.fresh:
                cannot_dump.add((i, j))
            continue
        latest = graph.latest_checkpoint(i)
        if link.fulfilling_ckpt_id is None:
            continue
        fulfilling = graph.checkpoint(link.fulfilling_ckpt_id)
        if latest is not None and latest.seq > fulfilling.seq:
            cannot_dump.add((i, j))

    return SuspendCostModel(
        op_ids=sorted(ops),
        parent=parent,
        stateful=stateful,
        has_checkpoint=has_checkpoint,
        d_s=d_s,
        d_r=d_r,
        links=links,
        g_s=g_s,
        g_r=g_r,
        cannot_dump_under=cannot_dump,
    )
