"""Dynamic-programming suspend-plan optimizer (an extension).

Without the suspend-budget constraint (Equation 7), the Section 5
objective is additive over operators and, given the chain context an
operator inherits from its parent (either "no chain" or "chain anchored
at j"), its subtree's optimum is independent of the rest of the plan. A
bottom-up DP over states (operator, chain-context) therefore finds the
exact optimum in O(n·h) states — versus the MIP's exponential worst case
— and is cross-checked against both the MIP and exhaustive enumeration in
the test suite.

With a finite budget the states couple through the global constraint and
the DP no longer applies; callers fall back to the MIP then.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.common.errors import SuspendBudgetInfeasibleError
from repro.core.costs import SuspendCostModel
from repro.core.strategies import (
    OpDecision,
    Strategy,
    SuspendPlan,
    validate_suspend_plan,
)

#: Chain context meaning "parent dumped (or is absent)".
NO_CHAIN = None


def build_dp_plan(model: SuspendCostModel) -> SuspendPlan:
    """Exact budget-free optimum via tree DP."""
    children_of: dict[Optional[int], list[int]] = {}
    for i in model.op_ids:
        children_of.setdefault(model.parent.get(i), []).append(i)
    root = children_of[NO_CHAIN][0]

    # memo[(i, chain)] = (cost of subtree rooted at i, decision for i)
    memo: dict[tuple[int, Optional[int]], tuple[float, OpDecision]] = {}

    def options(i: int, chain: Optional[int]) -> list[OpDecision]:
        opts = []
        if chain is NO_CHAIN:
            opts.append(OpDecision.dump())
            if (i, i) in model.links:
                opts.append(OpDecision.goback(i))
        else:
            if (i, chain) in model.links:
                opts.append(OpDecision.goback(chain))
            if (i, chain) not in model.cannot_dump_under:
                opts.append(OpDecision.dump())
        return opts

    def own_cost(i: int, decision: OpDecision) -> float:
        if decision.strategy is Strategy.DUMP:
            return model.d_s[i] + model.d_r[i]
        j = decision.goback_anchor
        return model.g_s[(i, j)] + model.g_r[(i, j)]

    def solve(i: int, chain: Optional[int]) -> tuple[float, OpDecision]:
        key = (i, chain)
        if key in memo:
            return memo[key]
        best_cost = math.inf
        best_decision = None
        for decision in options(i, chain):
            child_chain = (
                decision.goback_anchor
                if decision.strategy is Strategy.GOBACK
                else NO_CHAIN
            )
            total = own_cost(i, decision)
            feasible = True
            for child in children_of.get(i, []):
                child_cost, _ = solve(child, child_chain)
                if child_cost == math.inf:
                    feasible = False
                    break
                total += child_cost
            if feasible and total < best_cost:
                best_cost = total
                best_decision = decision
        memo[key] = (best_cost, best_decision)
        return memo[key]

    total, _ = solve(root, NO_CHAIN)
    if total == math.inf:
        raise SuspendBudgetInfeasibleError(
            "no valid suspend plan exists for the current contract graph"
        )

    decisions: dict[int, OpDecision] = {}

    def reconstruct(i: int, chain: Optional[int]) -> None:
        _, decision = memo[(i, chain)]
        decisions[i] = decision
        child_chain = (
            decision.goback_anchor
            if decision.strategy is Strategy.GOBACK
            else NO_CHAIN
        )
        for child in children_of.get(i, []):
            reconstruct(child, child_chain)

    reconstruct(root, NO_CHAIN)
    plan = SuspendPlan(decisions=decisions, source="dp")
    validate_suspend_plan(plan, model.topology())
    return plan
