"""A small mixed-integer programming solver for suspend-plan selection.

The Section 5 program has only zero-one variables and O(nh) constraints,
so a straightforward branch-and-bound over LP relaxations (solved with
``scipy.optimize.linprog``/HiGHS) is ample: the paper reports sub-60 ms
solves for 101-operator plans and our solver is in the same regime.

The module is generic: it solves

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                0 <= x <= 1,  x integral

and is used by :mod:`repro.core.optimizer`, which builds the constraint
matrix from the paper's Equations (1)-(8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.optimize import LinearConstraint, linprog, milp

#: Tolerance for treating an LP value as integral.
INT_TOL = 1e-6


@dataclass
class MIPResult:
    """Outcome of a solve. ``x`` is None when the program is infeasible."""

    x: Optional[np.ndarray]
    objective: float
    nodes_explored: int
    feasible: bool


def solve_binary_program(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    max_nodes: int = 100_000,
    use_highs_mip: bool = True,
) -> MIPResult:
    """Solve min c@x, A_ub@x <= b_ub, x in {0,1}^n.

    Uses HiGHS's branch-and-bound (``scipy.optimize.milp``) when
    available/enabled, falling back to the built-in branch-and-bound over
    LP relaxations otherwise (the fallback doubles as a cross-check in
    tests).
    """
    num_vars = len(c)
    if num_vars == 0:
        feasible = b_ub.size == 0 or bool(np.all(b_ub >= -INT_TOL))
        return MIPResult(
            x=np.zeros(0), objective=0.0, nodes_explored=0, feasible=feasible
        )
    if use_highs_mip:
        constraints = []
        if a_ub.size:
            constraints.append(
                LinearConstraint(a_ub, -np.inf * np.ones(len(b_ub)), b_ub)
            )
        res = milp(
            c,
            constraints=constraints,
            integrality=np.ones(num_vars),
            bounds=(0, 1),
        )
        if res.success:
            x = np.round(res.x)
            return MIPResult(
                x=x, objective=float(c @ x), nodes_explored=1, feasible=True
            )
        return MIPResult(
            x=None, objective=math.inf, nodes_explored=1, feasible=False
        )

    best_x: Optional[np.ndarray] = None
    best_obj = math.inf
    nodes = 0

    # Depth-first stack of (fixed assignments) nodes.
    stack: list[dict[int, float]] = [{}]
    while stack and nodes < max_nodes:
        fixed = stack.pop()
        nodes += 1
        bounds = [
            (fixed.get(i, 0.0), fixed.get(i, 1.0)) for i in range(num_vars)
        ]
        res = linprog(
            c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
        )
        if not res.success:
            continue  # infeasible subtree
        if res.fun >= best_obj - INT_TOL:
            continue  # bounded by incumbent
        x = res.x
        frac_idx = _most_fractional(x)
        if frac_idx is None:
            x = np.round(x)
            obj = float(c @ x)
            if obj < best_obj:
                best_obj = obj
                best_x = x
            continue
        # Branch on the most fractional variable; explore the rounding
        # closest to the LP value first (stack order: second pushed is
        # explored first).
        lo = dict(fixed)
        lo[frac_idx] = 0.0
        hi = dict(fixed)
        hi[frac_idx] = 1.0
        if x[frac_idx] >= 0.5:
            stack.append(lo)
            stack.append(hi)
        else:
            stack.append(hi)
            stack.append(lo)

    return MIPResult(
        x=best_x,
        objective=best_obj if best_x is not None else math.inf,
        nodes_explored=nodes,
        feasible=best_x is not None,
    )


def _most_fractional(x: np.ndarray) -> Optional[int]:
    frac = np.abs(x - np.round(x))
    idx = int(np.argmax(frac))
    if frac[idx] <= INT_TOL:
        return None
    return idx
