"""Online suspend-plan optimization (Section 5).

Builds the paper's mixed-integer program from the suspend-time cost model
and solves it with :mod:`repro.core.mip`. Variables x_{i,j} (operator i
goes back to the chain initiated by j ∈ anc(i)) map onto
:class:`~repro.core.strategies.OpDecision`; constraints follow
Equations (3)-(8):

(3)  Σ_j x_{i,j} <= 1
(4)  x_{i,j} <= x_{par(i),j}              for j ∈ anc(par(i))
(5)  x_{i,i} <= 1 - Σ_j x_{par(i),j}
(6)  x_{i,j} >= x_{par(i),j}  if c_{i,j}  for j ∈ anc(par(i))
(7)  Σ_i [ d^s_i (1 - Σ_j x_{i,j}) + Σ_j g^s_{i,j} x_{i,j} ] <= C
(8)  x_{i,j} ∈ {0, 1}

The objective is the total suspend+resume overhead, Equations (1)+(2).

``enumerate_valid_plans`` provides an exhaustive optimizer used to
cross-validate the MIP on small plans and as the reference in property
tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np
from scipy import sparse

from repro.common.errors import SuspendBudgetInfeasibleError
from repro.core.costs import SuspendCostModel, build_cost_model
from repro.core.mip import solve_binary_program
from repro.core.strategies import (
    OpDecision,
    Strategy,
    SuspendPlan,
    all_dump_plan,
    all_goback_plan,
    validate_suspend_plan,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.runtime import Runtime


@dataclass
class PlanCost:
    """Estimated cost split of a suspend plan."""

    suspend: float
    resume: float

    @property
    def total(self) -> float:
        return self.suspend + self.resume


def estimate_plan_cost(plan: SuspendPlan, model: SuspendCostModel) -> PlanCost:
    """Evaluate Equations (1)+(2) for a concrete plan."""
    suspend = 0.0
    resume = 0.0
    for i in model.op_ids:
        decision = plan.decision(i)
        if decision.strategy is Strategy.DUMP:
            suspend += model.d_s[i]
            resume += model.d_r[i]
        else:
            j = decision.goback_anchor
            suspend += model.g_s.get((i, j), 0.0)
            resume += model.g_r.get((i, j), 0.0)
    return PlanCost(suspend=suspend, resume=resume)


def build_lp_plan(
    model: SuspendCostModel, budget: float = math.inf, tracer=None
) -> SuspendPlan:
    """Solve the Section 5 MIP and decode the optimal suspend plan."""
    pairs = sorted(model.links)
    index = {pair: k for k, pair in enumerate(pairs)}
    n = len(pairs)

    # Objective: constant Σ(d_s + d_r) plus per-variable deltas.
    c = np.zeros(n)
    for (i, j), k in index.items():
        c[k] = (
            model.g_s[(i, j)]
            + model.g_r[(i, j)]
            - model.d_s[i]
            - model.d_r[i]
        )

    # Constraints are built sparsely (COO triplets); plans of 100+
    # operators have thousands of variables and dense rows dominate the
    # optimizer's runtime otherwise.
    coo_rows: list[int] = []
    coo_cols: list[int] = []
    coo_vals: list[float] = []
    rhs: list[float] = []

    def add_row(coeffs: dict[int, float], bound: float) -> None:
        row_idx = len(rhs)
        for k, v in coeffs.items():
            coo_rows.append(row_idx)
            coo_cols.append(k)
            coo_vals.append(v)
        rhs.append(bound)

    for i in model.op_ids:
        anchors = model.anchors_of(i)
        # (3): at most one anchor.
        if anchors:
            add_row({index[(i, j)]: 1.0 for j in anchors}, 1.0)
        parent = model.parent.get(i)
        if parent is None:
            continue
        parent_anchors = set(model.anchors_of(parent))
        for j in anchors:
            if j == i:
                # (5): own chain only under a dumping parent.
                coeffs = {index[(i, i)]: 1.0}
                for pj in parent_anchors:
                    coeffs[index[(parent, pj)]] = 1.0
                add_row(coeffs, 1.0)
            else:
                # (4): chain must pass through the parent.
                if (parent, j) in index:
                    add_row(
                        {index[(i, j)]: 1.0, index[(parent, j)]: -1.0}, 0.0
                    )
                else:
                    add_row({index[(i, j)]: 1.0}, 0.0)  # unreachable chain
        # (6): forced propagation when dumping is invalid under chain j.
        for pj in parent_anchors:
            if pj == parent and parent == i:
                continue
            if (i, pj) in model.cannot_dump_under:
                if (i, pj) in index:
                    add_row(
                        {
                            index[(parent, pj)]: 1.0,
                            index[(i, pj)]: -1.0,
                        },
                        0.0,
                    )
                else:
                    # The operator can neither dump nor join chain pj:
                    # the parent must not anchor there at all.
                    add_row({index[(parent, pj)]: 1.0}, 0.0)

    # (7): suspend budget.
    if budget != math.inf:
        coeffs = {}
        for (i, j), k in index.items():
            coeffs[k] = model.g_s[(i, j)] - model.d_s[i]
        bound = budget - sum(model.d_s.values())
        add_row(coeffs, bound)

    a_ub = sparse.csr_matrix(
        (coo_vals, (coo_rows, coo_cols)), shape=(len(rhs), n)
    )
    b_ub = np.array(rhs)
    result = solve_binary_program(c, a_ub, b_ub)
    if tracer is not None and tracer.enabled:
        tracer.event(
            "mip.solve",
            variables=n,
            constraints=len(rhs),
            nodes_explored=result.nodes_explored,
            objective=round(float(result.objective), 6),
            feasible=result.feasible,
            budget=budget,
        )
        tracer.metrics.counter("mip_nodes_explored_total").inc(
            result.nodes_explored
        )
    if not result.feasible:
        raise SuspendBudgetInfeasibleError(
            f"no valid suspend plan fits within budget {budget}"
        )

    decisions: dict[int, OpDecision] = {}
    for i in model.op_ids:
        chosen = None
        for j in model.anchors_of(i):
            if result.x[index[(i, j)]] > 0.5:
                chosen = j
                break
        if chosen is None:
            decisions[i] = OpDecision.dump()
        else:
            decisions[i] = OpDecision.goback(chosen)
    plan = SuspendPlan(decisions=decisions, source="lp")
    validate_suspend_plan(plan, model.topology())
    return plan


def enumerate_valid_plans(model: SuspendCostModel) -> Iterator[SuspendPlan]:
    """Yield every valid suspend plan (exponential; small plans only)."""
    children_of: dict[Optional[int], list[int]] = {}
    for i in model.op_ids:
        children_of.setdefault(model.parent.get(i), []).append(i)
    root = children_of[None][0]

    def options(i: int, chain: Optional[int]) -> list[OpDecision]:
        opts = []
        if chain is None:
            opts.append(OpDecision.dump())
            if (i, i) in model.links:
                opts.append(OpDecision.goback(i))
        else:
            if (i, chain) in model.links:
                opts.append(OpDecision.goback(chain))
            if (i, chain) not in model.cannot_dump_under:
                opts.append(OpDecision.dump())
        return opts

    def assign(
        todo: list[tuple[int, Optional[int]]], acc: dict[int, OpDecision]
    ) -> Iterator[dict[int, OpDecision]]:
        if not todo:
            yield dict(acc)
            return
        (i, chain), rest = todo[0], todo[1:]
        for decision in options(i, chain):
            acc[i] = decision
            child_chain = (
                decision.goback_anchor
                if decision.strategy is Strategy.GOBACK
                else None
            )
            child_todo = [
                (child, child_chain) for child in children_of.get(i, [])
            ]
            yield from assign(child_todo + rest, acc)
            del acc[i]

    for decisions in assign([(root, None)], {}):
        if len(decisions) == len(model.op_ids):
            plan = SuspendPlan(decisions=decisions, source="exhaustive")
            validate_suspend_plan(plan, model.topology())
            yield plan


def exhaustive_best_plan(
    model: SuspendCostModel, budget: float = math.inf
) -> SuspendPlan:
    """Brute-force optimum; reference implementation for tests."""
    best = None
    best_cost = math.inf
    for plan in enumerate_valid_plans(model):
        cost = estimate_plan_cost(plan, model)
        if cost.suspend > budget + 1e-9:
            continue
        if cost.total < best_cost - 1e-12:
            best_cost = cost.total
            best = plan
    if best is None:
        raise SuspendBudgetInfeasibleError(
            f"no valid suspend plan fits within budget {budget}"
        )
    return best


def choose_suspend_plan(
    runtime: "Runtime",
    strategy: str = "lp",
    budget: float = math.inf,
    model: Optional[SuspendCostModel] = None,
) -> SuspendPlan:
    """Pick a suspend plan for the current runtime state.

    ``strategy`` is one of:

    - ``"lp"`` — the paper's online optimizer (MIP);
    - ``"all_dump"`` / ``"all_goback"`` — the purist baselines;
    - ``"exhaustive"`` — brute force (testing).
    """
    if model is None:
        model = build_cost_model(runtime)
    topo = model.topology()
    tracer = getattr(runtime, "tracer", None)
    if strategy == "lp":
        return build_lp_plan(model, budget=budget, tracer=tracer)
    if strategy == "dp":
        from repro.core.tree_optimizer import build_dp_plan

        if budget != math.inf:
            # The DP cannot encode the global budget constraint.
            return build_lp_plan(model, budget=budget, tracer=tracer)
        return build_dp_plan(model)
    if strategy == "exhaustive":
        return exhaustive_best_plan(model, budget=budget)
    if strategy == "all_dump":
        plan = all_dump_plan(topo)
    elif strategy == "all_goback":
        plan = all_goback_plan(topo)
    else:
        raise ValueError(f"unknown suspend strategy {strategy!r}")
    validate_suspend_plan(plan, topo)
    return plan
