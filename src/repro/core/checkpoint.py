"""Checkpoints and contracts (Definitions 1 and 2 of the paper).

A *checkpoint* for operator O at time t contains the information needed to
restore O's execution state as of t. Stateful operators create them
*proactively* at minimal-heap-state points (where the payload is small,
often empty); stateless operators create them *reactively* when asked to
sign a contract.

A *contract* is an agreement between a parent P and a child Q, signed just
before Q outputs tuple r_i: Q agrees to be able to regenerate r_i, ..., r_n
in order whenever P enforces the contract. A contract records Q's control
state at signing (the roll-forward *target*) and points at the checkpoint
of Q that fulfills it.

Two extensions beyond the paper's minimal description, both needed for
operators whose consumption of a child is *streaming* (e.g. block NLJ's
inner child):

- ``nested``: contracts signed by Q with its stream children at the same
  moment, so that Q can reposition those children when rolling forward to
  the contract point. (The fulfilling checkpoint's own contracts only
  cover positions as of the checkpoint, not as of the signing point.)
- ``anchor``: what keeps the contract alive for pruning purposes — either
  the parent's checkpoint it was created for, or the enclosing contract
  when nested.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Nominal byte sizes used to charge control-state writes. Control state is
#: "always small" (Section 2); these constants only affect the (negligible)
#: GoBack suspend cost g^s.
CONTROL_ENTRY_BYTES = 16
CONTRACT_BASE_BYTES = 48
CHECKPOINT_BASE_BYTES = 48

_ckpt_ids = itertools.count(1)
_contract_ids = itertools.count(1)


def control_state_bytes(control: dict, bytes_per_saved_row: int = 200) -> int:
    """Nominal serialized size of a control-state dict.

    Saved rows (contract migration, footnote 3 of the paper) are charged at
    full tuple width; everything else is scalars.
    """
    total = CONTRACT_BASE_BYTES
    for key, value in control.items():
        if key == "saved_rows":
            total += len(value) * bytes_per_saved_row
        elif key == "heap":
            # Full-state checkpoint payloads carry heap rows: charge them
            # at tuple width so going back to one costs like a dump.
            total += _heap_rows(value) * bytes_per_saved_row
        elif key == "control" and isinstance(value, dict):
            total += control_state_bytes(value, bytes_per_saved_row)
        elif isinstance(value, (list, tuple)):
            total += CONTROL_ENTRY_BYTES * max(1, len(value))
        elif isinstance(value, dict):
            total += CONTROL_ENTRY_BYTES * max(1, len(value))
        else:
            total += CONTROL_ENTRY_BYTES
    return total


def _heap_rows(value) -> int:
    """Count the rows inside a heap-state payload of any shape."""
    if value is None:
        return 0
    if isinstance(value, (list, tuple)):
        return len(value)
    if isinstance(value, dict):
        return sum(_heap_rows(v) for v in value.values())
    return 1


@dataclass(slots=True)
class Checkpoint:
    """A restore point for one operator.

    Attributes:
        op_id: owning operator.
        seq: per-operator sequence number (monotone; used for the c_{i,j}
            "is the latest checkpoint newer than the fulfilling one" test).
        payload: operator-specific restore state. At minimal-heap-state
            points this is tiny (e.g. a sort's list of sublist handles; an
            NLJ's is empty).
        work_at: the operator's cumulative work (simulated cost units) when
            the checkpoint was created — the basis of the optimizer's
            g^r estimate.
        emitted_at: the operator's output-tuple count at creation, used for
            contract migration ("no tuples produced since" test).
        reactive: True for reactive checkpoints of stateless operators.
        created_at: virtual time of creation (diagnostics only).
    """

    op_id: int
    seq: int
    payload: dict
    work_at: float
    emitted_at: int
    reactive: bool = False
    created_at: float = 0.0
    ckpt_id: int = field(default_factory=lambda: next(_ckpt_ids))
    #: Memoized ``(payload, value)`` pair for :meth:`nominal_bytes`; the
    #: payload is written once at creation, so identity is the cache key.
    _bytes_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    def nominal_bytes(self) -> int:
        cached = self._bytes_cache
        if cached is not None and cached[0] is self.payload:
            return cached[1]
        value = CHECKPOINT_BASE_BYTES + control_state_bytes(self.payload)
        self._bytes_cache = (self.payload, value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "reactive" if self.reactive else "proactive"
        return f"Ckpt({self.ckpt_id}, op={self.op_id}, seq={self.seq}, {kind})"


@dataclass(slots=True)
class Contract:
    """An agreement letting ``child_op_id`` regenerate output from a point.

    Attributes:
        parent_op_id: the operator that requested the contract.
        child_op_id: the operator that signed it.
        control: the child's control state at signing — the roll-forward
            target when the contract is enforced.
        child_ckpt_id: the checkpoint of the child that fulfills the
            contract (its latest proactive checkpoint for stateful
            children; a fresh reactive checkpoint for stateless ones).
        anchor_ckpt_id / anchor_contract_id: what keeps this contract
            alive — exactly one is set. Checkpoint-anchored contracts are
            the graph edges of the paper; contract-anchored ones are the
            nested stream-child contracts described in the module docstring.
        work_at_signing / emitted_at_signing: the child's cumulative work
            and output count at signing, for cost estimation and migration.
        nested: contracts the child signed with its own stream children at
            the same moment, keyed by their op_id.
        saved_rows: rows saved by contract migration (footnote 3): tuples
            already surrendered to the parent that the child can no longer
            regenerate; returned first on resume.
    """

    parent_op_id: int
    child_op_id: int
    control: dict
    child_ckpt_id: int
    anchor_ckpt_id: Optional[int] = None
    anchor_contract_id: Optional[int] = None
    work_at_signing: float = 0.0
    emitted_at_signing: int = 0
    signed_at: float = 0.0
    nested: dict = field(default_factory=dict)
    saved_rows: list = field(default_factory=list)
    contract_id: int = field(default_factory=lambda: next(_contract_ids))
    #: Memoized key/value pair for :meth:`nominal_bytes`. Contract
    #: migration *replaces* ``control`` and ``saved_rows`` (it never
    #: mutates them in place) and drops nested contracts wholesale, so
    #: object identity plus the collection lengths form a sound cache key.
    _bytes_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self):
        anchors = (self.anchor_ckpt_id is not None) + (
            self.anchor_contract_id is not None
        )
        if anchors != 1:
            raise ValueError(
                "a contract must have exactly one anchor "
                f"(ckpt={self.anchor_ckpt_id}, ctr={self.anchor_contract_id})"
            )

    def nominal_bytes(self, bytes_per_saved_row: int = 200) -> int:
        key = (
            self.control,
            self.saved_rows,
            len(self.saved_rows),
            len(self.nested),
            bytes_per_saved_row,
        )
        cached = self._bytes_cache
        if (
            cached is not None
            and cached[0] is key[0]
            and cached[1] is key[1]
            and cached[2:5] == key[2:]
        ):
            return cached[5]
        total = control_state_bytes(self.control, bytes_per_saved_row)
        total += len(self.saved_rows) * bytes_per_saved_row
        for sub in self.nested.values():
            total += sub.nominal_bytes(bytes_per_saved_row)
        self._bytes_cache = key + (total,)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Ctr({self.contract_id}, {self.parent_op_id}->{self.child_op_id}, "
            f"ckpt={self.child_ckpt_id})"
        )
