"""The SuspendedQuery data structure (Section 2).

Populated during the suspend phase, written to (simulated) disk, and read
back during the resume phase. It encapsulates everything needed to
regenerate the query's execution state at the suspend point:

- the execution plan (a picklable spec tree, re-instantiated at resume),
- the suspend plan that was carried out,
- one :class:`OpSuspendEntry` per operator, and
- handles to any heap state dumped by DumpState operators.

The structure is small apart from the dump handles (whose payloads were
already charged as page I/O when dumped): writing it costs a few
control-state pages, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import StorageError
from repro.core.checkpoint import control_state_bytes
from repro.core.strategies import SuspendPlan
from repro.storage.statefile import DumpHandle, StateStore

#: Entry kinds. ``dump`` continues from the exact suspend point;
#: ``dump_to_contract`` continues from an earlier contract point using the
#: dumped (still-valid) heap state; ``goback`` rebuilds heap state by
#: rolling forward from a checkpoint to the recorded target control state.
KIND_DUMP = "dump"
KIND_DUMP_TO_CONTRACT = "dump_to_contract"
KIND_GOBACK = "goback"

_VALID_KINDS = (KIND_DUMP, KIND_DUMP_TO_CONTRACT, KIND_GOBACK)


@dataclass(slots=True)
class OpSuspendEntry:
    """Per-operator resume information.

    Attributes:
        op_id: the operator this entry belongs to.
        kind: one of the module-level KIND_* constants.
        target_control: the control state to restore/roll forward to. For
            ``dump`` it is the state at the suspend point; for
            ``dump_to_contract`` and ``goback`` under a chain it is the
            contract's recorded control state.
        ckpt_payload: for ``goback``: the fulfilling checkpoint's payload.
        dump_handle: for dump kinds: handle to the dumped heap state.
        current_control: for ``dump_to_contract``: the operator's control
            state at the suspend point. The dumped heap reflects *current*
            state while the output must restart from the contract point;
            resume reconciles the two.
        saved_rows: rows carried by a migrated contract (footnote 3),
            returned first on resume before regular regeneration.
    """

    op_id: int
    kind: str
    target_control: dict
    ckpt_payload: Optional[dict] = None
    dump_handle: Optional[DumpHandle] = None
    current_control: Optional[dict] = None
    saved_rows: list = field(default_factory=list)

    def __post_init__(self):
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown suspend entry kind {self.kind!r}")

    def nominal_bytes(self, bytes_per_row: int = 200) -> int:
        total = 64 + control_state_bytes(self.target_control, bytes_per_row)
        if self.ckpt_payload is not None:
            total += control_state_bytes(self.ckpt_payload, bytes_per_row)
        total += len(self.saved_rows) * bytes_per_row
        return total


@dataclass
class SuspendedQuery:
    """Everything needed to resume a suspended query."""

    plan_spec: Any
    suspend_plan: SuspendPlan
    entries: dict[int, OpSuspendEntry] = field(default_factory=dict)
    #: Output tuples the root had emitted before suspension (the client has
    #: already received them; resume continues after them).
    root_rows_emitted: int = 0
    suspended_at: float = 0.0
    #: The query's as-if-solo virtual clock (its lane) at the end of the
    #: suspend phase. Resume restarts the lane here so the per-query
    #: timeline stays continuous across the gap — in any process, under
    #: any schedule, folded or not. Defaults to ``suspended_at`` when
    #: decoding images written before this field existed.
    query_clock: float = 0.0
    #: Dump payloads exported for migration to a replica (see
    #: :meth:`export_payloads`). Empty when resuming in place.
    migrated_payloads: dict = field(default_factory=dict)

    def entry(self, op_id: int) -> OpSuspendEntry:
        if op_id not in self.entries:
            raise StorageError(f"SuspendedQuery has no entry for op {op_id}")
        return self.entries[op_id]

    def add_entry(self, entry: OpSuspendEntry) -> None:
        if entry.op_id in self.entries:
            raise StorageError(
                f"SuspendedQuery already has an entry for op {entry.op_id}"
            )
        self.entries[entry.op_id] = entry

    def nominal_bytes(self, bytes_per_row: int = 200) -> int:
        """Size of the structure itself (dumped heap state not included)."""
        total = 256  # plans and header
        total += sum(
            e.nominal_bytes(bytes_per_row) for e in self.entries.values()
        )
        return total

    # ------------------------------------------------------------------
    # Serialization (durable suspend images)
    # ------------------------------------------------------------------
    def referenced_handles(self) -> dict[str, DumpHandle]:
        """Every DumpHandle reachable from the structure, keyed by key."""
        handles: dict[str, DumpHandle] = {}
        for entry in self.entries.values():
            for obj in (
                entry.dump_handle,
                entry.target_control,
                entry.current_control,
                entry.ckpt_payload,
            ):
                for handle in _iter_handles(obj):
                    handles[handle.key] = handle
        return handles

    def to_dict(self) -> dict:
        """Stable JSON-compatible control record (payloads not included;
        see :meth:`export_payloads` / the durability ImageStore)."""
        from repro.durability import codec  # local: codec imports this module

        return codec.suspended_query_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SuspendedQuery":
        from repro.durability import codec  # local: codec imports this module

        return codec.suspended_query_from_dict(data)

    def to_record(self) -> dict:
        """Codec-v2 control record: like :meth:`to_dict` but keeps tuples
        and DumpHandles as objects (the binary codec encodes them natively
        instead of JSON-tagging them)."""
        from repro.durability import codec2  # local: import cycle

        return codec2.suspended_query_to_record(self)

    @classmethod
    def from_record(cls, data: dict) -> "SuspendedQuery":
        from repro.durability import codec2  # local: import cycle

        return codec2.suspended_query_from_record(data)

    # ------------------------------------------------------------------
    # Migration support (the Grid scenario)
    # ------------------------------------------------------------------
    def export_payloads(self, store: StateStore) -> None:
        """Copy every referenced stored payload into the structure itself.

        Used when migrating to a replica DBMS whose state store does not
        hold the dumps or the operators' disk-resident state (sorted
        sublists, hash partitions). The paper notes that shipping state
        over the network costs an order of magnitude more than local
        dumps; the *receiving* side charges the transfer when importing.
        """
        self.migrated_payloads = {
            key: store.export_payload(handle)
            for key, handle in self.referenced_handles().items()
        }

    def import_payloads(self, store: StateStore) -> None:
        """Re-home migrated payloads into ``store``, charging the writes,
        and rewrite every handle in the structure to point at them."""
        mapping: dict[str, DumpHandle] = {}

        def rehome(handle: DumpHandle) -> DumpHandle:
            if handle.key in mapping:
                return mapping[handle.key]
            if handle.key not in self.migrated_payloads:
                raise StorageError(
                    f"migrated SuspendedQuery lacks payload for handle "
                    f"{handle.key!r}"
                )
            payload, pages = self.migrated_payloads[handle.key]
            new = store.import_payload(handle.key, payload, pages)
            mapping[handle.key] = new
            return new

        for entry in self.entries.values():
            if entry.dump_handle is not None:
                entry.dump_handle = rehome(entry.dump_handle)
            entry.target_control = _map_handles(entry.target_control, rehome)
            entry.current_control = _map_handles(
                entry.current_control, rehome
            )
            entry.ckpt_payload = _map_handles(entry.ckpt_payload, rehome)
        self.migrated_payloads = {}


def _iter_handles(obj):
    """Yield every DumpHandle nested anywhere inside ``obj``."""
    if isinstance(obj, DumpHandle):
        yield obj
    elif isinstance(obj, dict):
        for value in obj.values():
            yield from _iter_handles(value)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            yield from _iter_handles(value)


def _map_handles(obj, fn):
    """Return ``obj`` with every nested DumpHandle replaced by ``fn(h)``."""
    if isinstance(obj, DumpHandle):
        return fn(obj)
    if isinstance(obj, dict):
        return {k: _map_handles(v, fn) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_map_handles(v, fn) for v in obj]
    if isinstance(obj, tuple):
        return tuple(_map_handles(v, fn) for v in obj)
    return obj
