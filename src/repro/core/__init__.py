"""The paper's primary contribution.

- :mod:`repro.core.checkpoint` / :mod:`repro.core.contract_graph` —
  asynchronous checkpoints, contracts, and the contract graph (Section 3).
- :mod:`repro.core.strategies` — the DumpState/GoBack suspend-plan space
  and its validity rules (Sections 3.2 and 5).
- :mod:`repro.core.suspended_query` — the SuspendedQuery structure.
- :mod:`repro.core.costs` — suspend-time cost constants (d, g, c).
- :mod:`repro.core.mip` / :mod:`repro.core.optimizer` — the
  mixed-integer-programming suspend-plan optimizer (Section 5).
- :mod:`repro.core.static_optimizer` — the offline baseline of Figure 12.
- :mod:`repro.core.lifecycle` — the execute/suspend/resume query lifecycle.
"""

from repro.core.checkpoint import Checkpoint, Contract
from repro.core.contract_graph import ContractGraph
from repro.core.lifecycle import ExecutionResult, QuerySession, QueryStatus
from repro.core.optimizer import choose_suspend_plan
from repro.core.strategies import OpDecision, Strategy, SuspendPlan
from repro.core.suspended_query import OpSuspendEntry, SuspendedQuery

__all__ = [
    "Checkpoint",
    "Contract",
    "ContractGraph",
    "ExecutionResult",
    "OpDecision",
    "OpSuspendEntry",
    "QuerySession",
    "QueryStatus",
    "Strategy",
    "SuspendPlan",
    "SuspendedQuery",
    "choose_suspend_plan",
]
