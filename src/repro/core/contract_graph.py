"""The contract graph (Section 3.1) and its maintenance (Section 3.4).

Nodes are checkpoints; edges are contracts. A checkpoint-anchored contract
runs from its anchor checkpoint (the parent's) to the child checkpoint that
fulfills it. Nested (contract-anchored) contracts hang off an enclosing
contract and likewise reference a fulfilling child checkpoint.

Pruning follows Section 3.4: a checkpoint can be deleted when it has no
incoming live contract and it is not its operator's most recent checkpoint;
deleting it kills its outgoing contracts, which may make further
checkpoints deletable. The resulting live set satisfies Theorem 1's O(nh)
bound, which :meth:`ContractGraph.check_theorem1_bound` asserts.

Contract migration (Section 3.4) re-points an incoming contract at an
operator's newest checkpoint when the operator has produced no output since
the contract was signed — so resume skips re-performing the intervening
work entirely.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.common.errors import ContractError
from repro.core.checkpoint import Checkpoint, Contract
from repro.obs.tracer import NULL_TRACER, Tracer


class ContractGraph:
    """Runtime store of live checkpoints and contracts for one query."""

    def __init__(self, tracer: Optional[Tracer] = None):
        self._checkpoints: dict[int, Checkpoint] = {}
        self._contracts: dict[int, Contract] = {}
        self._latest: dict[int, Checkpoint] = {}
        self._seq: dict[int, int] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def next_seq(self, op_id: int) -> int:
        """Allocate the next per-operator checkpoint sequence number."""
        seq = self._seq.get(op_id, 0) + 1
        self._seq[op_id] = seq
        return seq

    def add_checkpoint(self, ckpt: Checkpoint) -> Checkpoint:
        """Register a checkpoint and make it its operator's latest."""
        self._checkpoints[ckpt.ckpt_id] = ckpt
        self._latest[ckpt.op_id] = ckpt
        return ckpt

    def add_contract(self, contract: Contract) -> Contract:
        """Register a contract (and, recursively, its nested contracts)."""
        if contract.child_ckpt_id not in self._checkpoints:
            raise ContractError(
                f"contract {contract.contract_id} references unknown "
                f"checkpoint {contract.child_ckpt_id}"
            )
        self._contracts[contract.contract_id] = contract
        for sub in contract.nested.values():
            if sub.contract_id not in self._contracts:
                self.add_contract(sub)
        return contract

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def checkpoint(self, ckpt_id: int) -> Checkpoint:
        if ckpt_id not in self._checkpoints:
            raise ContractError(f"checkpoint {ckpt_id} is not live")
        return self._checkpoints[ckpt_id]

    def contract(self, contract_id: int) -> Contract:
        if contract_id not in self._contracts:
            raise ContractError(f"contract {contract_id} is not live")
        return self._contracts[contract_id]

    def latest_checkpoint(self, op_id: int) -> Optional[Checkpoint]:
        return self._latest.get(op_id)

    def checkpoints_of(self, op_id: int) -> list[Checkpoint]:
        return [c for c in self._checkpoints.values() if c.op_id == op_id]

    def contract_from(self, ckpt: Checkpoint, child_op_id: int) -> Contract:
        """The contract anchored at ``ckpt`` whose signer is ``child_op_id``."""
        for contract in self._contracts.values():
            if (
                contract.anchor_ckpt_id == ckpt.ckpt_id
                and contract.child_op_id == child_op_id
            ):
                return contract
        raise ContractError(
            f"checkpoint {ckpt.ckpt_id} (op {ckpt.op_id}) has no contract "
            f"with child operator {child_op_id}"
        )

    def has_contract_from(self, ckpt: Checkpoint, child_op_id: int) -> bool:
        try:
            self.contract_from(ckpt, child_op_id)
            return True
        except ContractError:
            return False

    def contracts_of_child(self, op_id: int) -> list[Contract]:
        """Live contracts signed by operator ``op_id``."""
        return [
            c for c in self._contracts.values() if c.child_op_id == op_id
        ]

    def incoming_contracts(self, ckpt_id: int) -> list[Contract]:
        """Live contracts fulfilled by checkpoint ``ckpt_id``."""
        return [
            c for c in self._contracts.values() if c.child_ckpt_id == ckpt_id
        ]

    @property
    def num_checkpoints(self) -> int:
        return len(self._checkpoints)

    @property
    def num_contracts(self) -> int:
        return len(self._contracts)

    # ------------------------------------------------------------------
    # Contract migration (Section 3.4)
    # ------------------------------------------------------------------
    def migrate_contracts(
        self,
        op_id: int,
        new_ckpt: Checkpoint,
        tuples_emitted: int,
        new_control: dict,
        work_now: float,
    ) -> int:
        """Re-point incoming contracts of ``op_id`` to ``new_ckpt``.

        A contract migrates when the operator has produced no output since
        the contract was signed (and the contract saved no rows). The
        migrated contract's target becomes the operator's state at the new
        checkpoint, so fulfilling it requires no roll-forward past the new
        checkpoint. Returns the number of contracts migrated.
        """
        migrated = 0
        for contract in list(self._contracts.values()):
            if contract.child_op_id != op_id:
                continue
            if contract.child_ckpt_id == new_ckpt.ckpt_id:
                continue
            if contract.saved_rows:
                continue
            if contract.emitted_at_signing != tuples_emitted:
                continue
            contract.child_ckpt_id = new_ckpt.ckpt_id
            contract.control = dict(new_control)
            contract.work_at_signing = work_now
            # Nested stream-child contracts recorded positions as of the
            # original signing; after migration the target moved to the new
            # checkpoint, whose own contracts cover the children, so the
            # stale nested contracts are dropped.
            self._remove_nested(contract)
            migrated += 1
        return migrated

    def _remove_nested(self, contract: Contract) -> None:
        for sub in contract.nested.values():
            self._remove_nested(sub)
            self._contracts.pop(sub.contract_id, None)
        contract.nested = {}

    # ------------------------------------------------------------------
    # Pruning (Section 3.4) and Theorem 1
    # ------------------------------------------------------------------
    def prune(self) -> int:
        """Delete inactive checkpoints and contracts; return deletions.

        A contract is live iff its anchor (checkpoint or enclosing
        contract) is live. A checkpoint is live iff it is its operator's
        latest or some live contract is fulfilled by it. Computed as a
        fixpoint (the graph is tiny, O(nh)).
        """
        removed = 0
        while True:
            live_ckpts = set(self._checkpoints)
            dead_contracts = [
                cid
                for cid, c in self._contracts.items()
                if (
                    c.anchor_ckpt_id is not None
                    and c.anchor_ckpt_id not in live_ckpts
                )
                or (
                    c.anchor_contract_id is not None
                    and c.anchor_contract_id not in self._contracts
                )
            ]
            for cid in dead_contracts:
                del self._contracts[cid]
            referenced = {c.child_ckpt_id for c in self._contracts.values()}
            latest_ids = {c.ckpt_id for c in self._latest.values()}
            dead_ckpts = [
                ckpt_id
                for ckpt_id in self._checkpoints
                if ckpt_id not in referenced and ckpt_id not in latest_ids
            ]
            for ckpt_id in dead_ckpts:
                del self._checkpoints[ckpt_id]
            removed += len(dead_contracts) + len(dead_ckpts)
            if not dead_contracts and not dead_ckpts:
                if self.tracer.enabled:
                    if removed:
                        self.tracer.event(
                            "graph.pruned",
                            removed=removed,
                            checkpoints=len(self._checkpoints),
                            contracts=len(self._contracts),
                        )
                    metrics = self.tracer.metrics
                    metrics.gauge("contract_graph_checkpoints").max(
                        len(self._checkpoints)
                    )
                    metrics.gauge("contract_graph_contracts").max(
                        len(self._contracts)
                    )
                return removed

    def check_theorem1_bound(self, num_operators: int, height: int) -> None:
        """Assert the Theorem 1 size bound on the live graph.

        Each operator keeps at most ``height + 1`` active checkpoints (its
        latest plus one per ancestor whose latest checkpoint reaches it).
        """
        if self.tracer.enabled:
            # The Theorem 1 headroom metric: live node count vs the O(nh)
            # limit the theorem guarantees.
            limit = (height + 1) * num_operators
            self.tracer.metrics.gauge("contract_graph_theorem1_bound").set(
                limit
            )
        per_op: dict[int, int] = {}
        for ckpt in self._checkpoints.values():
            per_op[ckpt.op_id] = per_op.get(ckpt.op_id, 0) + 1
        for op_id, count in per_op.items():
            if count > height + 1:
                raise ContractError(
                    f"operator {op_id} holds {count} live checkpoints, "
                    f"exceeding the Theorem 1 bound of height+1={height + 1}"
                )
        limit = (height + 1) * num_operators
        if len(self._checkpoints) > limit:
            raise ContractError(
                f"{len(self._checkpoints)} live checkpoints exceed the "
                f"O(nh) bound of {limit}"
            )

    def total_nominal_bytes(self, bytes_per_row: int = 200) -> int:
        """Nominal in-memory footprint of the live graph (for reporting)."""
        total = sum(c.nominal_bytes() for c in self._checkpoints.values())
        total += sum(
            c.nominal_bytes(bytes_per_row) for c in self._contracts.values()
        )
        return total
