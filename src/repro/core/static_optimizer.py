"""The offline/static suspend-plan baseline of Figure 12.

The paper contrasts its online optimizer — which uses exact runtime state
at suspend time — with "an optimizer that uses offline statistics to make
a strategy choice". The static optimizer here decides between the two
purist plans (all-DumpState vs all-GoBack) from *table-level statistics
only*: it estimates the recomputation cost of heap state from catalog
selectivity estimates and compares it against the dump-and-reload cost,
assuming buffers are half full on average (it cannot know the actual
suspend point).

On the skewed table of Figure 12 the table-level effective selectivity
(~0.385) sits above the DumpState/GoBack crossover (~0.28), so the static
optimizer always picks all-GoBack — even while execution is inside the
low-selectivity region where all-DumpState is far cheaper. The online
optimizer adapts; this one, by construction, cannot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.strategies import SuspendPlan, all_dump_plan, all_goback_plan
from repro.core.costs import build_cost_model

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.base import Operator
    from repro.engine.runtime import Runtime


def _subtree_selectivity(op: "Operator") -> float:
    """Estimated selectivity of the subtree feeding an operator's heap.

    Multiplies the catalog's table-level estimates for every filter on the
    path down to the scans. Missing estimates default to 1.0.
    """
    from repro.engine.filter import Filter
    from repro.engine.scan import TableScan

    if isinstance(op, Filter):
        label = getattr(op.predicate, "label", "predicate")
        sel = 1.0
        scan = _find_scan(op)
        if scan is not None:
            stats = op.rt.db.catalog.stats(scan.table.name)
            sel = stats.selectivity_of(label, default=1.0)
        return sel * _subtree_selectivity(op.children[0])
    if not op.children:
        return 1.0
    return _subtree_selectivity(op.children[0])


def _find_scan(op: "Operator"):
    from repro.engine.scan import TableScan

    if isinstance(op, TableScan):
        return op
    for child in op.children:
        found = _find_scan(child)
        if found is not None:
            return found
    return None


def choose_static_plan(runtime: "Runtime") -> SuspendPlan:
    """Pick all-DumpState or all-GoBack from table-level statistics."""
    cost_model = runtime.disk.cost_model
    read = cost_model.page_read_cost
    write = cost_model.page_write_cost

    dump_total = 0.0
    goback_total = 0.0
    any_stateful = False
    for op in runtime.ops.values():
        if not op.STATEFUL:
            continue
        any_stateful = True
        buffer_capacity = getattr(op, "buffer_tuples", None)
        expected_tuples = (
            buffer_capacity / 2 if buffer_capacity else max(1, op.heap_tuples())
        )
        per_page = op.schema.tuples_per_page(cost_model.page_bytes)
        expected_pages = max(1.0, expected_tuples / per_page)
        # Dump: write at suspend, read at resume.
        dump_total += expected_pages * (write + read)
        # GoBack: re-read enough base pages to regenerate the heap state.
        sel = _subtree_selectivity(op.children[0]) if op.children else 1.0
        sel = max(sel, 1e-6)
        goback_total += (expected_tuples / sel) / per_page * read

    model = build_cost_model(runtime)
    topo = model.topology()
    if not any_stateful or goback_total <= dump_total:
        plan = all_goback_plan(topo)
    else:
        plan = all_dump_plan(topo)
    plan.source = "static"
    return plan
