"""Suspend strategies and the suspend-plan space (Sections 3.2 and 5).

A *suspend plan* assigns each operator either:

- ``DUMP`` (the paper's DumpState): write heap state to disk now, plus the
  control state needed to continue from the exact point; or
- ``GOBACK`` with a *goback anchor* j: discard heap state and rely on the
  contract chain originally initiated by operator j (an ancestor, or the
  operator itself when it starts its own chain after a dumping parent).

The MIP variables x_{i,j} of Section 5 map one-to-one onto
``OpDecision(GOBACK, anchor=j)``; "all x of operator i are zero" maps onto
``OpDecision(DUMP)``. ``validate_suspend_plan`` enforces the paper's
Equations (3)-(6):

(3) at most one anchor per operator;
(4) a child may anchor at j only if its parent does;
(5) an operator starts its own chain (anchor = itself) only if its parent
    dumps (or it is the root);
(6) when the parent anchors at j and the operator cannot dump under chain
    j (the c_{i,j} runtime restriction), it must anchor at j too.

Two additional structural rules are implied by the operator semantics and
checked here as well: only *stateful* operators may start their own chain
(footnote 2 of the paper), and stateless operators must propagate a
parent's chain (they hold no heap state from which to regenerate output
for the contract point, so c_{i,j} = 1 for them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Mapping, Optional

from repro.common.errors import InvalidSuspendPlanError


class Strategy(Enum):
    """Per-operator suspend strategy."""

    DUMP = "dump"
    GOBACK = "goback"


@dataclass(frozen=True)
class OpDecision:
    """The suspend decision for one operator.

    ``goback_anchor`` is the op_id of the operator whose contract chain is
    followed (Section 5's j index); it is required for GOBACK and must be
    None for DUMP.

    ``dump_children`` implements Section 3.4's *generalized suspend
    plans*: a GoBack operator may choose DumpState with respect to
    individual children — e.g. a merge join that goes back on its left
    side while dumping its right-side value packet. The listed children
    receive a plain ``Suspend()`` (their positions are kept) and the
    operator dumps the corresponding heap fraction instead of
    regenerating it. Only operators that support per-child handling
    (currently merge join) honor the field.
    """

    strategy: Strategy
    goback_anchor: Optional[int] = None
    dump_children: tuple = ()

    def __post_init__(self):
        if self.strategy is Strategy.GOBACK and self.goback_anchor is None:
            raise InvalidSuspendPlanError("GOBACK decision requires an anchor")
        if self.strategy is Strategy.DUMP and self.goback_anchor is not None:
            raise InvalidSuspendPlanError("DUMP decision cannot carry an anchor")
        if self.strategy is Strategy.DUMP and self.dump_children:
            raise InvalidSuspendPlanError(
                "per-child dumps only modify a GOBACK decision"
            )

    @staticmethod
    def dump() -> "OpDecision":
        return OpDecision(Strategy.DUMP)

    @staticmethod
    def goback(anchor: int, dump_children: tuple = ()) -> "OpDecision":
        return OpDecision(
            Strategy.GOBACK,
            goback_anchor=anchor,
            dump_children=tuple(dump_children),
        )


@dataclass
class SuspendPlan:
    """A complete suspend plan: one decision per operator id."""

    decisions: dict[int, OpDecision] = field(default_factory=dict)
    #: Which optimizer produced it ("lp", "all_dump", "all_goback",
    #: "static", ...) — reporting only.
    source: str = "manual"

    def decision(self, op_id: int) -> OpDecision:
        if op_id not in self.decisions:
            raise InvalidSuspendPlanError(f"no decision for operator {op_id}")
        return self.decisions[op_id]

    def is_all(self, strategy: Strategy) -> bool:
        return all(d.strategy is strategy for d in self.decisions.values())

    def describe(self, names: Optional[Mapping[int, str]] = None) -> str:
        """Human-readable one-line-per-operator rendering (Figure 11)."""
        lines = []
        for op_id in sorted(self.decisions):
            decision = self.decisions[op_id]
            name = names[op_id] if names else f"op{op_id}"
            if decision.strategy is Strategy.DUMP:
                lines.append(f"{name}: DumpState")
            else:
                anchor = decision.goback_anchor
                target = (
                    "self"
                    if anchor == op_id
                    else (names[anchor] if names else f"op{anchor}")
                )
                lines.append(f"{name}: GoBack(to {target})")
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanTopology:
    """The tree facts the validity rules need, decoupled from operators.

    ``parent`` maps op_id -> parent op_id (root absent); ``stateful`` and
    ``has_checkpoint`` describe per-operator capabilities;
    ``cannot_dump_under`` is the c_{i,j} relation: (i, j) present means
    operator i cannot DumpState when its parent's chain anchors at j.
    """

    parent: Mapping[int, int]
    stateful: Mapping[int, bool]
    has_checkpoint: Mapping[int, bool]
    cannot_dump_under: frozenset

    def op_ids(self) -> list[int]:
        ids = set(self.parent) | set(self.parent.values())
        ids |= set(self.stateful)
        return sorted(ids)

    def root_id(self) -> int:
        ids = set(self.stateful)
        for op_id in self.parent:
            ids.discard(op_id)
        if len(ids) != 1:
            raise InvalidSuspendPlanError(
                f"topology does not have a unique root: {sorted(ids)}"
            )
        return next(iter(ids))

    def ancestors_and_self(self, op_id: int) -> list[int]:
        """anc(i) of the paper: i plus every proper ancestor, bottom-up."""
        chain = [op_id]
        current = op_id
        while current in self.parent:
            current = self.parent[current]
            chain.append(current)
        return chain

    def height(self) -> int:
        return max(
            len(self.ancestors_and_self(op_id)) for op_id in self.op_ids()
        )


def validate_suspend_plan(plan: SuspendPlan, topo: PlanTopology) -> None:
    """Raise :class:`InvalidSuspendPlanError` unless ``plan`` is valid."""
    op_ids = topo.op_ids()
    missing = [i for i in op_ids if i not in plan.decisions]
    if missing:
        raise InvalidSuspendPlanError(f"plan lacks decisions for {missing}")

    for op_id in op_ids:
        decision = plan.decision(op_id)
        for child_id in decision.dump_children:
            if topo.parent.get(child_id) != op_id:
                raise InvalidSuspendPlanError(
                    f"operator {op_id} lists {child_id} in dump_children "
                    "but it is not one of its children"
                )
        parent_id = topo.parent.get(op_id)
        parent_decision = plan.decision(parent_id) if parent_id is not None else None
        # A child whose heap contribution the parent dumps receives a
        # plain Suspend(): for validity purposes its parent "dumped".
        if (
            parent_decision is not None
            and parent_decision.strategy is Strategy.GOBACK
            and op_id in parent_decision.dump_children
        ):
            parent_decision = OpDecision.dump()

        if decision.strategy is Strategy.GOBACK:
            anchor = decision.goback_anchor
            if anchor not in topo.ancestors_and_self(op_id):
                raise InvalidSuspendPlanError(
                    f"operator {op_id} anchors at {anchor}, which is not an "
                    "ancestor of it"
                )
            if anchor == op_id:
                # Rule (5) + footnote 2: own chains need a dumping parent
                # (or root) and a stateful operator with a live checkpoint.
                if not topo.stateful.get(op_id, False):
                    raise InvalidSuspendPlanError(
                        f"stateless operator {op_id} cannot start a GoBack chain"
                    )
                if not topo.has_checkpoint.get(op_id, False):
                    raise InvalidSuspendPlanError(
                        f"operator {op_id} has no checkpoint to go back to"
                    )
                if (
                    parent_decision is not None
                    and parent_decision.strategy is Strategy.GOBACK
                ):
                    raise InvalidSuspendPlanError(
                        f"operator {op_id} starts its own chain although its "
                        "parent goes back (violates Eq. 5)"
                    )
            else:
                # Rule (4): the chain must pass through the parent.
                if parent_decision is None:
                    raise InvalidSuspendPlanError(
                        f"root operator {op_id} cannot anchor at {anchor}"
                    )
                if (
                    parent_decision.strategy is not Strategy.GOBACK
                    or parent_decision.goback_anchor != anchor
                ):
                    raise InvalidSuspendPlanError(
                        f"operator {op_id} anchors at {anchor} but its parent "
                        f"decision is {parent_decision} (violates Eq. 4)"
                    )
        else:  # DUMP
            # Rule (6): under a parent chain anchored at j, dumping is only
            # allowed when (i, j) is not in the c restriction.
            if (
                parent_decision is not None
                and parent_decision.strategy is Strategy.GOBACK
            ):
                j = parent_decision.goback_anchor
                if (op_id, j) in topo.cannot_dump_under:
                    raise InvalidSuspendPlanError(
                        f"operator {op_id} dumps under chain {j} although "
                        "c_{i,j}=1 forbids it (violates Eq. 6)"
                    )


def all_dump_plan(topo: PlanTopology) -> SuspendPlan:
    """The paper's all-DumpState strawman plan."""
    return SuspendPlan(
        decisions={i: OpDecision.dump() for i in topo.op_ids()},
        source="all_dump",
    )


def all_goback_plan(topo: PlanTopology) -> SuspendPlan:
    """The paper's all-GoBack plan.

    Every stateful operator whose parent dumps—or that is the root—starts
    its own chain; everything beneath a chain propagates it; stateless
    operators under a dumping parent dump (they have no heap state, so
    "dump" is just recording control state).
    """
    decisions: dict[int, OpDecision] = {}

    def assign(op_id: int, chain: Optional[int]) -> None:
        if chain is not None:
            decisions[op_id] = OpDecision.goback(chain)
            child_chain = chain
        elif topo.stateful.get(op_id, False) and topo.has_checkpoint.get(
            op_id, False
        ):
            decisions[op_id] = OpDecision.goback(op_id)
            child_chain = op_id
        else:
            decisions[op_id] = OpDecision.dump()
            child_chain = None
        for child_id, parent_id in topo.parent.items():
            if parent_id == op_id:
                assign(child_id, child_chain)

    assign(topo.root_id(), None)
    return SuspendPlan(decisions=decisions, source="all_goback")
