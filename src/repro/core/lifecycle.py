"""The execute/suspend/resume query lifecycle (Section 2, Figure 3).

:class:`QuerySession` drives one query through the lifecycle:

- ``execute()`` pulls tuples from the root operator. A suspend condition
  (armed via ``suspend_when`` or requested directly) raises the suspend
  exception at the next safe point and leaves the session ready for the
  suspend phase.
- ``suspend()`` chooses a suspend plan (online LP by default), carries it
  out via the recursive ``Suspend()``/``Suspend(Ctr)`` calls, writes the
  SuspendedQuery structure to disk, and discards the in-memory plan.
- ``QuerySession.resume(db, sq)`` reads the structure back, re-instantiates
  the execution plan, and runs the recursive ``Resume()`` protocol; the
  returned session continues exactly after the last tuple delivered.

A suspend request arriving *during* resume follows the paper's rule:
discard the half-resumed state and keep the old SuspendedQuery
(:meth:`QuerySession.resume` is atomic from the caller's perspective).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Union

from repro.common.errors import ReproError, SuspendRequested
# These two used to be function-local imports inside ``suspend()``; they
# are cycle-free (repro.core.costs only type-checks against the engine)
# and belong at module level.
from repro.core.costs import build_cost_model
from repro.core.optimizer import choose_suspend_plan, estimate_plan_cost
from repro.core.static_optimizer import choose_static_plan
from repro.core.strategies import Strategy, SuspendPlan, validate_suspend_plan
from repro.core.suspended_query import SuspendedQuery
from repro.engine.config import EngineConfig
from repro.engine.plan import PlanSpec, instantiate_plan
from repro.engine.runtime import ResumeContext, Runtime, SuspendContext
from repro.storage.database import Database


class QueryStatus(Enum):
    RUNNING = "running"
    SUSPEND_PENDING = "suspend_pending"
    SUSPENDED = "suspended"
    COMPLETED = "completed"


class SuspendStrategy(Enum):
    """How :meth:`QuerySession.suspend` chooses its suspend plan.

    - ``LP`` — the paper's online MIP optimizer (Section 5);
    - ``DP`` — the exact tree dynamic program (no budget support);
    - ``ALL_DUMP`` / ``ALL_GOBACK`` — the purist baselines;
    - ``STATIC`` — the table-statistics-only baseline (Figure 12);
    - ``EXHAUSTIVE`` — brute-force enumeration (testing/cross-validation).
    """

    LP = "lp"
    DP = "dp"
    ALL_DUMP = "all_dump"
    ALL_GOBACK = "all_goback"
    STATIC = "static"
    EXHAUSTIVE = "exhaustive"


@dataclass(frozen=True)
class SuspendOptions:
    """Options for one suspend phase.

    ``strategy`` selects the plan optimizer, ``budget`` bounds the
    suspend-time cost (Equation 7), and a pre-built ``plan`` — validated
    against the live topology — overrides both.
    """

    strategy: SuspendStrategy = SuspendStrategy.LP
    budget: float = math.inf
    plan: Optional[SuspendPlan] = None

    def __post_init__(self):
        if not isinstance(self.strategy, SuspendStrategy):
            # Tolerate the enum's value strings so callers migrating off
            # the legacy API can write SuspendOptions(strategy="lp").
            object.__setattr__(
                self, "strategy", SuspendStrategy(self.strategy)
            )
        if self.budget < 0:
            raise ValueError(f"negative suspend budget {self.budget}")


def _legacy_suspend_options(
    strategy: Union[str, SuspendStrategy, None],
    budget: Optional[float],
    plan: Optional[SuspendPlan],
) -> SuspendOptions:
    """Build :class:`SuspendOptions` from the deprecated keyword form."""
    warnings.warn(
        "QuerySession.suspend(strategy=..., budget=..., plan=...) is "
        "deprecated; pass a SuspendOptions instead, e.g. "
        "suspend(SuspendOptions(strategy=SuspendStrategy.LP, budget=...))",
        DeprecationWarning,
        stacklevel=3,
    )
    return SuspendOptions(
        strategy=(
            SuspendStrategy(strategy)
            if strategy is not None
            else SuspendStrategy.LP
        ),
        budget=budget if budget is not None else math.inf,
        plan=plan,
    )


#: Root-drain batch size used by ``execute()`` when no ``max_rows`` bound
#: caps the request. Purely a wall-clock knob: batches are invisible to the
#: virtual clock and the checkpoint/contract protocol.
BATCH_ROWS = 1024


@dataclass
class ExecutionResult:
    """What one ``execute()`` call produced."""

    status: QueryStatus
    rows: list = field(default_factory=list)
    #: Virtual time consumed by this execute call.
    elapsed: float = 0.0


class QuerySession:
    """One query's journey through execute/suspend/resume."""

    def __init__(
        self,
        db: Database,
        plan_spec: PlanSpec,
        config: Optional[EngineConfig] = None,
        priority: int = 0,
        name: Optional[str] = None,
        tracer=None,
    ):
        self.db = db
        self.plan_spec = plan_spec
        self.config = config or EngineConfig()
        #: Scheduling priority (higher runs first); only meaningful when
        #: the session is served by a :class:`repro.service.QueryScheduler`.
        self.priority = priority
        self.name = name
        self.runtime = Runtime(db, self.config, tracer=tracer, query=name)
        self.root = instantiate_plan(plan_spec, self.runtime)
        self.root.open()
        self.status = QueryStatus.RUNNING
        self.rows: list = []
        self.last_suspend_cost = 0.0
        self.last_resume_cost = 0.0
        self.last_suspend_plan: Optional[SuspendPlan] = None
        #: ImageInfo of the durable image written by the last
        #: ``suspend(persist_to=...)`` call, if any.
        self.last_image = None

    # ------------------------------------------------------------------
    # Execute phase
    # ------------------------------------------------------------------
    def execute(
        self,
        max_rows: Optional[int] = None,
        suspend_when: Optional[Callable[[Runtime], bool]] = None,
        collect: bool = True,
    ) -> ExecutionResult:
        """Run until completion, ``max_rows`` outputs, or a suspend request.

        ``suspend_when`` is a predicate over the runtime; when it first
        holds at a safe point, execution stops with status
        ``SUSPEND_PENDING`` and :meth:`suspend` may be called.
        """
        if self.status not in (QueryStatus.RUNNING, QueryStatus.SUSPEND_PENDING):
            raise ReproError(f"cannot execute in status {self.status}")
        if suspend_when is not None:
            self.runtime.controller.arm(suspend_when)
        produced: list = []
        count = 0
        start = self.db.now
        tracer = self.runtime.tracer
        io_before = self.db.disk.counters.snapshot() if tracer.enabled else None
        controller = self.runtime.controller
        fired_before = controller.fired
        try:
            if self.config.batch_execution:
                # Vectorized path: a drain is a handful of next_batch()
                # calls instead of one interpreted next() per root row.
                # Operators return short batches at checkpoint/phase
                # boundaries and partial batches when a suspend condition
                # fires mid-batch (the produced rows are kept, exactly as
                # the row loop below keeps rows produced before the raise).
                while True:
                    need = BATCH_ROWS if max_rows is None else max_rows - count
                    if need <= 0:
                        break
                    batch = self.root.next_batch(min(need, BATCH_ROWS))
                    if batch:
                        count += len(batch)
                        if collect:
                            produced.extend(batch)
                    if controller.fired and not fired_before:
                        self.status = QueryStatus.SUSPEND_PENDING
                        break
                    if not batch:
                        self.status = QueryStatus.COMPLETED
                        break
            else:
                while True:
                    row = self.root.next()
                    if row is None:
                        self.status = QueryStatus.COMPLETED
                        break
                    count += 1
                    if collect:
                        produced.append(row)
                    if max_rows is not None and count >= max_rows:
                        break
        except SuspendRequested:
            self.status = QueryStatus.SUSPEND_PENDING
        finally:
            self.runtime.controller.disarm()
        self.rows.extend(produced)
        if io_before is not None:
            io = self.db.disk.counters.snapshot().minus(io_before)
            tracer.event(
                "query.execute",
                ts=start,
                dur=round(self.db.now - start, 6),
                rows=count,
                status=self.status.value,
                pages_read=io.pages_read,
                pages_written=io.pages_written,
            )
            pool = self.db.buffer_pool
            if pool is not None:
                pool.publish_metrics(tracer.metrics)
                tracer.event(
                    "pool.stats",
                    ts=self.db.now,
                    hits=pool.hits,
                    misses=pool.misses,
                    evictions=pool.evictions,
                    hit_rate=round(pool.hit_rate, 6),
                )
        return ExecutionResult(
            status=self.status, rows=produced, elapsed=self.db.now - start
        )

    # ------------------------------------------------------------------
    # Suspend phase
    # ------------------------------------------------------------------
    def suspend(
        self,
        options: Union[SuspendOptions, str, None] = None,
        *,
        strategy: Union[str, SuspendStrategy, None] = None,
        budget: Optional[float] = None,
        plan: Optional[SuspendPlan] = None,
        persist_to=None,
        image_id: Optional[str] = None,
        image_meta: Optional[dict] = None,
    ) -> SuspendedQuery:
        """Carry out the suspend phase and return the SuspendedQuery.

        ``options`` is a :class:`SuspendOptions`; with none given the
        online LP optimizer runs unbudgeted. The keyword form
        ``suspend(strategy="lp", budget=..., plan=...)`` (and the
        positional string form ``suspend("lp")``) is deprecated but still
        accepted; it emits a :class:`DeprecationWarning`.

        ``persist_to`` (an image-root path or a
        :class:`~repro.durability.store.ImageStore`) additionally commits
        the suspended query as a durable on-disk image, so it survives
        process death; the resulting
        :class:`~repro.durability.store.ImageInfo` lands in
        :attr:`last_image`. Persistence charges no extra simulated-disk
        I/O: the dumped pages were paid for at dump time and the control
        record by the ``write_control_bytes`` below — the image is the
        durable form of those same bytes.
        """
        if isinstance(options, str):
            # Legacy positional call: suspend("all_dump").
            options = _legacy_suspend_options(options, budget, plan)
        elif options is None:
            if strategy is not None or budget is not None or plan is not None:
                options = _legacy_suspend_options(strategy, budget, plan)
            else:
                options = SuspendOptions()
        elif strategy is not None or budget is not None or plan is not None:
            raise TypeError(
                "pass either a SuspendOptions or the deprecated "
                "strategy/budget/plan keywords, not both"
            )
        if self.status in (QueryStatus.SUSPENDED, QueryStatus.COMPLETED):
            raise ReproError(f"cannot suspend in status {self.status}")
        controller = self.runtime.controller
        controller.suppress()
        start = self.db.now
        tracer = self.runtime.tracer
        io_before = self.db.disk.counters.snapshot() if tracer.enabled else None
        try:
            chosen = options.plan
            # With tracing on, build the cost model here once so the
            # per-operator decision events can carry the MIP's objective
            # terms for every strategy (including STATIC and caller-
            # supplied plans, which never build one themselves).
            cost_model = (
                build_cost_model(self.runtime) if tracer.enabled else None
            )
            if chosen is None:
                if options.strategy is SuspendStrategy.STATIC:
                    chosen = choose_static_plan(self.runtime)
                else:
                    chosen = choose_suspend_plan(
                        self.runtime,
                        strategy=options.strategy.value,
                        budget=options.budget,
                        model=cost_model,
                    )
            else:
                # Caller-supplied plans are validated against the live
                # topology and c_{i,j} restrictions before being trusted.
                validate_suspend_plan(
                    chosen,
                    (
                        cost_model
                        if cost_model is not None
                        else build_cost_model(self.runtime)
                    ).topology(),
                )
            if cost_model is not None:
                self._trace_suspend_plan(tracer, chosen, cost_model, options)
            sq = SuspendedQuery(
                plan_spec=self.plan_spec,
                suspend_plan=chosen,
                root_rows_emitted=self.root.tuples_emitted,
                suspended_at=self.db.now,
            )
            ctx = SuspendContext(plan=chosen, sq=sq, runtime=self.runtime)
            self.root.do_suspend(ctx)
            # Write the SuspendedQuery structure itself to disk.
            self.db.disk.write_control_bytes(
                sq.nominal_bytes(bytes_per_row=200)
            )
        finally:
            controller.unsuppress()
        self.last_suspend_cost = self.db.now - start
        self.last_suspend_plan = chosen
        if io_before is not None:
            io = self.db.disk.counters.snapshot().minus(io_before)
            tracer.event(
                "query.suspend",
                ts=start,
                dur=round(self.last_suspend_cost, 6),
                plan_source=chosen.source,
                budget=options.budget,
                actual_cost=round(self.last_suspend_cost, 6),
                pages_written=io.pages_written,
            )
            tracer.metrics.histogram("suspend_cost").observe(
                self.last_suspend_cost
            )
        # Release all memory resources: the operator tree is discarded.
        self.close()
        self.status = QueryStatus.SUSPENDED
        if persist_to is not None:
            # Persist last: a crash mid-commit leaves the in-memory
            # SuspendedQuery intact and a torn image the recovery scan
            # quarantines — never a half-suspended session.
            from repro.durability.store import ImageStore

            image_store = (
                persist_to
                if isinstance(persist_to, ImageStore)
                else ImageStore(persist_to)
            )
            self.last_image = image_store.save(
                sq,
                self.db.state_store,
                image_id=image_id,
                meta=image_meta,
                tracer=self.runtime.tracer,
            )
        return sq

    def _trace_suspend_plan(self, tracer, plan, model, options) -> None:
        """Emit ``suspend.plan`` plus one ``mip.decision`` per operator."""
        est = estimate_plan_cost(plan, model)
        tracer.event(
            "suspend.plan",
            source=plan.source,
            strategy=options.strategy.value,
            budget=options.budget,
            est_suspend=round(est.suspend, 6),
            est_resume=round(est.resume, 6),
            num_ops=len(model.op_ids),
        )
        metrics = tracer.metrics
        for op_id in sorted(model.op_ids):
            decision = plan.decision(op_id)
            fields = {
                "op": op_id,
                "op_name": self.runtime.ops[op_id].name,
                "strategy": decision.strategy.value,
                "dump_suspend_cost": round(model.d_s[op_id], 6),
                "dump_resume_cost": round(model.d_r[op_id], 6),
            }
            if decision.strategy is Strategy.GOBACK:
                anchor = decision.goback_anchor
                fields["goback_anchor"] = anchor
                fields["goback_suspend_cost"] = round(
                    model.g_s.get((op_id, anchor), 0.0), 6
                )
                fields["goback_resume_cost"] = round(
                    model.g_r.get((op_id, anchor), 0.0), 6
                )
            tracer.event("mip.decision", **fields)
            metrics.counter(
                "suspend_decisions_total", strategy=decision.strategy.value
            ).inc()

    def close(self) -> None:
        """Release the operator tree and every heap resource it holds.

        Used by the suspend phase after dumping state, and by schedulers
        as the *kill* and *discard-half-resumed* primitive: afterwards
        :meth:`memory_in_use` is 0 and the session can no longer execute.
        """
        if self.runtime.ops:
            self.root.close()
        self.runtime.ops.clear()
        self.runtime.ops_by_name.clear()

    # ------------------------------------------------------------------
    # Resume phase
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        db: Database,
        sq: SuspendedQuery,
        config: Optional[EngineConfig] = None,
        priority: int = 0,
        name: Optional[str] = None,
        tracer=None,
    ) -> "QuerySession":
        """Reconstruct a session from a SuspendedQuery.

        The resume phase reads the structure back from disk, recreates the
        plan, and invokes ``Resume()`` on the root, which restores every
        operator either from its dump or by rolling forward from its
        checkpoint. The returned session's next output tuple is the one
        immediately after the last delivered before suspension.
        """
        session = cls.__new__(cls)
        session.db = db
        session.plan_spec = sq.plan_spec
        session.config = config or EngineConfig()
        session.priority = priority
        session.name = name
        session.runtime = Runtime(db, session.config, tracer=tracer, query=name)
        session.rows = []
        session.last_suspend_cost = 0.0
        session.last_suspend_plan = sq.suspend_plan
        session.last_image = None

        start = db.now
        session_tracer = session.runtime.tracer
        io_before = (
            db.disk.counters.snapshot() if session_tracer.enabled else None
        )
        controller = session.runtime.controller
        controller.suppress()
        try:
            if sq.migrated_payloads:
                sq.import_payloads(db.state_store)
            # Read the SuspendedQuery structure from disk.
            db.disk.read_control_bytes(sq.nominal_bytes(bytes_per_row=200))
            session.root = instantiate_plan(sq.plan_spec, session.runtime)
            ctx = ResumeContext(sq=sq, runtime=session.runtime)
            session.root.do_resume(ctx)
        finally:
            controller.unsuppress()
        session.last_resume_cost = db.now - start
        if io_before is not None:
            io = db.disk.counters.snapshot().minus(io_before)
            session_tracer.event(
                "query.resume",
                ts=start,
                dur=round(session.last_resume_cost, 6),
                plan_source=sq.suspend_plan.source,
                pages_read=io.pages_read,
                pages_written=io.pages_written,
            )
            session_tracer.metrics.histogram("resume_cost").observe(
                session.last_resume_cost
            )
        session.status = QueryStatus.RUNNING
        return session

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def op_named(self, name: str):
        return self.runtime.op_named(name)

    def operator_names(self) -> dict[int, str]:
        return {op_id: op.name for op_id, op in self.runtime.ops.items()}

    def memory_in_use(self) -> int:
        """Bytes of operator heap state currently held (page-granular).

        The paper's motivating resource: a suspended query must release
        all of it. After :meth:`suspend` the operator tree is discarded
        and this returns 0; the dumped state lives on (simulated) disk.
        """
        return self.runtime.memory_in_use()

    def stats_rows(self) -> list[dict]:
        """Per-operator runtime statistics (for monitoring/reports).

        One row per operator: emitted tuple count, attributed work
        (simulated time units), current heap size in tuples, and the
        number of live checkpoints in the contract graph.
        """
        graph = self.runtime.graph
        rows = []
        for op_id in sorted(self.runtime.ops):
            op = self.runtime.ops[op_id]
            latest = graph.latest_checkpoint(op_id)
            rows.append(
                {
                    "op": op.name,
                    "type": type(op).__name__,
                    "emitted": op.tuples_emitted,
                    "work": round(op.work, 2),
                    "heap_tuples": op.heap_tuples(),
                    "checkpoints": len(graph.checkpoints_of(op_id)),
                    "latest_ckpt_seq": latest.seq if latest else 0,
                }
            )
        return rows

    def describe_plan(self) -> str:
        """Indented tree rendering of the live operator plan."""

        def render(op, depth: int) -> list[str]:
            lines = [f"{'  ' * depth}{op.name} ({type(op).__name__})"]
            for child in op.children:
                lines.extend(render(child, depth + 1))
            return lines

        return "\n".join(render(self.root, 0))
