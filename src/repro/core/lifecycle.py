"""The execute/suspend/resume query lifecycle (Section 2, Figure 3).

:class:`QuerySession` drives one query through the lifecycle:

- ``execute()`` pulls tuples from the root operator. A suspend condition
  (armed via ``suspend_when`` or requested directly) raises the suspend
  exception at the next safe point and leaves the session ready for the
  suspend phase.
- ``suspend()`` chooses a suspend plan (online LP by default), carries it
  out via the recursive ``Suspend()``/``Suspend(Ctr)`` calls, writes the
  SuspendedQuery structure to disk, and discards the in-memory plan.
- ``QuerySession.resume(db, sq)`` reads the structure back, re-instantiates
  the execution plan, and runs the recursive ``Resume()`` protocol; the
  returned session continues exactly after the last tuple delivered.

A suspend request arriving *during* resume follows the paper's rule:
discard the half-resumed state and keep the old SuspendedQuery
(:meth:`QuerySession.resume` is atomic from the caller's perspective).
"""

from __future__ import annotations

import math
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.durability.store import ImageStore

from repro.common.errors import ReproError, SuspendRequested
# These two used to be function-local imports inside ``suspend()``; they
# are cycle-free (repro.core.costs only type-checks against the engine)
# and belong at module level.
from repro.core.costs import build_cost_model
from repro.core.optimizer import choose_suspend_plan, estimate_plan_cost
from repro.core.static_optimizer import choose_static_plan
from repro.core.strategies import Strategy, SuspendPlan, validate_suspend_plan
from repro.core.suspended_query import SuspendedQuery
from repro.engine.config import EngineConfig
from repro.engine.plan import PlanSpec, instantiate_plan
from repro.engine.runtime import ResumeContext, Runtime, SuspendContext
from repro.storage.database import Database


class QueryStatus(Enum):
    RUNNING = "running"
    SUSPEND_PENDING = "suspend_pending"
    SUSPENDED = "suspended"
    COMPLETED = "completed"


class SuspendStrategy(Enum):
    """How :meth:`QuerySession.suspend` chooses its suspend plan.

    - ``LP`` — the paper's online MIP optimizer (Section 5);
    - ``DP`` — the exact tree dynamic program (no budget support);
    - ``ALL_DUMP`` / ``ALL_GOBACK`` — the purist baselines;
    - ``STATIC`` — the table-statistics-only baseline (Figure 12);
    - ``EXHAUSTIVE`` — brute-force enumeration (testing/cross-validation).
    """

    LP = "lp"
    DP = "dp"
    ALL_DUMP = "all_dump"
    ALL_GOBACK = "all_goback"
    STATIC = "static"
    EXHAUSTIVE = "exhaustive"


@dataclass(frozen=True)
class SuspendSpec:
    """Everything one suspend phase needs, in a single value.

    One spec is accepted uniformly by :meth:`QuerySession.suspend`, by
    ``SchedulerConfig(suspend=...)``, and by the CLI — the single home
    for knobs that previously sprawled across ``persist_to=``,
    ``--codec``, ``delta_spill``, ``commit_workers``, and
    ``SuspendOptions``.

    Plan selection:

    - ``strategy`` selects the suspend-plan optimizer;
    - ``budget`` bounds the suspend-time cost (Equation 7);
    - a pre-built ``plan`` — validated against the live topology —
      overrides both.

    Durable persistence (all ignored when ``persist_to`` is ``None``):

    - ``persist_to`` — an :class:`~repro.durability.store.ImageStore`
      or image-root path; the suspended query is additionally committed
      as a durable on-disk image;
    - ``codec`` — image codec version (1 tagged-JSON, 2 binary
      columnar); ``None`` uses the store default. Only applied when
      ``persist_to`` is a path;
    - ``delta`` — commit repeat suspends as delta images against
      ``base_image_id`` (or the scheduler-tracked previous image)
      instead of rewriting unchanged state;
    - ``commit_workers`` — thread-pool size for parallel durable
      commits (``<= 1`` = serial). Only applied when ``persist_to`` is
      a path;
    - ``image_id`` / ``image_meta`` — explicit id and metadata for the
      committed image;
    - ``base_image_id`` — existing image to delta against (requires
      ``delta=True``).
    """

    strategy: SuspendStrategy = SuspendStrategy.LP
    budget: float = math.inf
    plan: Optional[SuspendPlan] = None
    persist_to: Union["ImageStore", str, None] = None
    codec: Optional[int] = None
    delta: bool = True
    commit_workers: int = 0
    image_id: Optional[str] = None
    image_meta: Optional[dict] = None
    base_image_id: Optional[str] = None

    def __post_init__(self):
        if not isinstance(self.strategy, SuspendStrategy):
            # Tolerate the enum's value strings so callers can write
            # SuspendSpec(strategy="lp") — e.g. straight from a CLI flag.
            object.__setattr__(
                self, "strategy", SuspendStrategy(self.strategy)
            )
        if self.budget < 0:
            raise ValueError(f"negative suspend budget {self.budget}")
        if self.codec not in (None, 1, 2):
            raise ValueError(f"unknown image codec {self.codec!r}")

    def replace(self, **changes) -> "SuspendSpec":
        """A copy of this spec with ``changes`` applied."""
        spec = replace(self, **changes)
        # dataclasses.replace would instantiate the (deprecated)
        # subclass and re-warn; always return a plain SuspendSpec.
        if type(spec) is not SuspendSpec:
            spec = SuspendSpec(
                **{f: getattr(spec, f) for f in _SUSPEND_SPEC_FIELDS}
            )
        return spec

    def resolve_image_store(self) -> Optional["ImageStore"]:
        """The :class:`ImageStore` to persist to, or ``None``.

        A string ``persist_to`` is opened with this spec's ``codec`` and
        ``commit_workers``; a ready-made store is passed through (its
        own settings win, as before).
        """
        if self.persist_to is None:
            return None
        if not isinstance(self.persist_to, str):
            return self.persist_to
        from repro.durability.store import ImageStore

        kwargs = {"commit_workers": self.commit_workers}
        if self.codec is not None:
            kwargs["codec_version"] = self.codec
        return ImageStore(self.persist_to, **kwargs)


_SUSPEND_SPEC_FIELDS = tuple(SuspendSpec.__dataclass_fields__)


#: Module-level latch so the SuspendOptions deprecation fires exactly once
#: per process — a scheduler constructing one spec per suspend cycle should
#: not flood the warning log with the identical message. Tests reset it.
_SUSPEND_OPTIONS_WARNED = False


class SuspendOptions(SuspendSpec):
    """Deprecated name for :class:`SuspendSpec` (the PR-1 spelling)."""

    def __post_init__(self):
        global _SUSPEND_OPTIONS_WARNED
        if not _SUSPEND_OPTIONS_WARNED:
            _SUSPEND_OPTIONS_WARNED = True
            warnings.warn(
                "SuspendOptions is deprecated; use SuspendSpec (same "
                "fields, plus the durable-persistence knobs)",
                DeprecationWarning,
                stacklevel=3,
            )
        super().__post_init__()


#: ``QuerySession.suspend`` keywords that still work but now warn: each
#: maps onto a :class:`SuspendSpec` field.
_LEGACY_SUSPEND_KEYWORDS = {
    "persist_to": "persist_to",
    "image_id": "image_id",
    "image_meta": "image_meta",
}
#: Keywords of the PR-1 string-form shim, removed outright.
_REMOVED_SUSPEND_KEYWORDS = ("strategy", "budget", "plan")


#: Root-drain batch size used by ``execute()`` when no ``max_rows`` bound
#: caps the request. Purely a wall-clock knob: batches are invisible to the
#: virtual clock and the checkpoint/contract protocol.
BATCH_ROWS = 1024


@dataclass
class ExecutionResult:
    """What one ``execute()`` call produced."""

    status: QueryStatus
    rows: list = field(default_factory=list)
    #: Virtual time consumed by this execute call.
    elapsed: float = 0.0


class QuerySession:
    """One query's journey through execute/suspend/resume."""

    def __init__(
        self,
        db: Database,
        plan_spec: PlanSpec,
        config: Optional[EngineConfig] = None,
        priority: int = 0,
        name: Optional[str] = None,
        tracer=None,
        fold=None,
    ):
        self.db = db
        self.plan_spec = plan_spec
        self.config = config or EngineConfig()
        #: Scheduling priority (higher runs first); only meaningful when
        #: the session is served by a :class:`repro.service.QueryScheduler`.
        self.priority = priority
        self.name = name
        self.runtime = Runtime(db, self.config, tracer=tracer, query=name)
        #: Fold binding (``repro.fold``): when the scheduler detected that
        #: this query shares subplans with running siblings, the binding
        #: makes ``instantiate_plan`` graft the shared leaves onto the
        #: fold's producers. Must be installed before instantiation.
        self.runtime.fold = fold
        with self._lane_active():
            self.root = instantiate_plan(plan_spec, self.runtime)
            self.root.open()
        self.status = QueryStatus.RUNNING
        self.rows: list = []
        self.last_suspend_cost = 0.0
        self.last_resume_cost = 0.0
        self.last_suspend_plan: Optional[SuspendPlan] = None
        #: ImageInfo of the durable image written by the last
        #: ``suspend(persist_to=...)`` call, if any.
        self.last_image = None

    @contextmanager
    def _lane_active(self):
        """Install this session's :class:`QueryLane` as the disk's active
        lane for the duration — every charge mirrors onto the query's
        private as-if-solo clock. Restores the previous lane on exit so
        interleaved sessions (a scheduler quantum, a nested resume) never
        cross-charge each other's lanes."""
        prev = self.db.disk.set_lane(self.runtime.lane)
        try:
            yield
        finally:
            self.db.disk.set_lane(prev)

    @property
    def query_now(self) -> float:
        """This query's as-if-solo virtual clock (its lane's time)."""
        return self.runtime.lane.now

    # ------------------------------------------------------------------
    # Execute phase
    # ------------------------------------------------------------------
    def execute(
        self,
        max_rows: Optional[int] = None,
        suspend_when: Optional[Callable[[Runtime], bool]] = None,
        collect: bool = True,
    ) -> ExecutionResult:
        """Run until completion, ``max_rows`` outputs, or a suspend request.

        ``suspend_when`` is a predicate over the runtime; when it first
        holds at a safe point, execution stops with status
        ``SUSPEND_PENDING`` and :meth:`suspend` may be called.
        """
        if self.status not in (QueryStatus.RUNNING, QueryStatus.SUSPEND_PENDING):
            raise ReproError(f"cannot execute in status {self.status}")
        if suspend_when is not None:
            self.runtime.controller.arm(suspend_when)
        produced: list = []
        count = 0
        start = self.db.now
        tracer = self.runtime.tracer
        io_before = self.db.disk.counters.snapshot() if tracer.enabled else None
        controller = self.runtime.controller
        fired_before = controller.fired
        prev_lane = self.db.disk.set_lane(self.runtime.lane)
        try:
            if self.config.batch_execution:
                # Vectorized path: a drain is a handful of next_batch()
                # calls instead of one interpreted next() per root row.
                # Operators return short batches at checkpoint/phase
                # boundaries and partial batches when a suspend condition
                # fires mid-batch (the produced rows are kept, exactly as
                # the row loop below keeps rows produced before the raise).
                while True:
                    need = BATCH_ROWS if max_rows is None else max_rows - count
                    if need <= 0:
                        break
                    batch = self.root.next_batch(min(need, BATCH_ROWS))
                    if batch:
                        count += len(batch)
                        if collect:
                            produced.extend(batch)
                    if controller.fired and not fired_before:
                        self.status = QueryStatus.SUSPEND_PENDING
                        break
                    if not batch:
                        self.status = QueryStatus.COMPLETED
                        break
            else:
                while True:
                    row = self.root.next()
                    if row is None:
                        self.status = QueryStatus.COMPLETED
                        break
                    count += 1
                    if collect:
                        produced.append(row)
                    if max_rows is not None and count >= max_rows:
                        break
        except SuspendRequested:
            self.status = QueryStatus.SUSPEND_PENDING
        finally:
            self.db.disk.set_lane(prev_lane)
            self.runtime.controller.disarm()
        self.rows.extend(produced)
        if io_before is not None:
            io = self.db.disk.counters.snapshot().minus(io_before)
            tracer.event(
                "query.execute",
                ts=start,
                dur=round(self.db.now - start, 6),
                rows=count,
                status=self.status.value,
                pages_read=io.pages_read,
                pages_written=io.pages_written,
            )
            pool = self.db.buffer_pool
            if pool is not None:
                pool.publish_metrics(tracer.metrics)
                tracer.event(
                    "pool.stats",
                    ts=self.db.now,
                    hits=pool.hits,
                    misses=pool.misses,
                    evictions=pool.evictions,
                    hit_rate=round(pool.hit_rate, 6),
                )
        return ExecutionResult(
            status=self.status, rows=produced, elapsed=self.db.now - start
        )

    # ------------------------------------------------------------------
    # Suspend phase
    # ------------------------------------------------------------------
    def suspend(self, spec: Optional[SuspendSpec] = None, **legacy) -> SuspendedQuery:
        """Carry out the suspend phase and return the SuspendedQuery.

        ``spec`` is a :class:`SuspendSpec`; with none given the online LP
        optimizer runs unbudgeted and nothing is persisted. The PR-1
        string-form shim — ``suspend("lp")`` and the
        ``strategy=/budget=/plan=`` keywords — has been removed; pass
        ``SuspendSpec(strategy=..., budget=..., plan=...)``.

        With ``spec.persist_to`` set (an image-root path or a
        :class:`~repro.durability.store.ImageStore`), the suspended query
        is additionally committed as a durable on-disk image, so it
        survives process death; the resulting
        :class:`~repro.durability.store.ImageInfo` lands in
        :attr:`last_image`. Persistence charges no extra simulated-disk
        I/O: the dumped pages were paid for at dump time and the control
        record by the ``write_control_bytes`` below — the image is the
        durable form of those same bytes. The standalone ``persist_to=``
        / ``image_id=`` / ``image_meta=`` keywords are deprecated
        spellings of the same spec fields and emit a
        :class:`DeprecationWarning`.
        """
        if isinstance(spec, str) or any(
            k in legacy for k in _REMOVED_SUSPEND_KEYWORDS
        ):
            raise TypeError(
                "the string-form suspend API — suspend('lp') and the "
                "strategy=/budget=/plan= keywords — has been removed; "
                "pass a SuspendSpec: suspend(SuspendSpec(strategy="
                "SuspendStrategy.LP, budget=...))"
            )
        unknown = set(legacy) - set(_LEGACY_SUSPEND_KEYWORDS)
        if unknown:
            raise TypeError(
                f"suspend() got unexpected keyword(s) {sorted(unknown)}"
            )
        if legacy:
            warnings.warn(
                "QuerySession.suspend(persist_to=..., image_id=..., "
                "image_meta=...) keywords are deprecated; fold them into "
                "the spec: suspend(SuspendSpec(persist_to=..., "
                "image_id=..., image_meta=...))",
                DeprecationWarning,
                stacklevel=2,
            )
        options = spec if spec is not None else SuspendSpec()
        if legacy:
            options = options.replace(
                **{_LEGACY_SUSPEND_KEYWORDS[k]: v for k, v in legacy.items()}
            )
        if self.status in (QueryStatus.SUSPENDED, QueryStatus.COMPLETED):
            raise ReproError(f"cannot suspend in status {self.status}")
        controller = self.runtime.controller
        controller.suppress()
        start = self.db.now
        lane_start = self.query_now
        tracer = self.runtime.tracer
        io_before = self.db.disk.counters.snapshot() if tracer.enabled else None
        prev_lane = self.db.disk.set_lane(self.runtime.lane)
        try:
            chosen = options.plan
            # With tracing on, build the cost model here once so the
            # per-operator decision events can carry the MIP's objective
            # terms for every strategy (including STATIC and caller-
            # supplied plans, which never build one themselves).
            cost_model = (
                build_cost_model(self.runtime) if tracer.enabled else None
            )
            if chosen is None:
                if options.strategy is SuspendStrategy.STATIC:
                    chosen = choose_static_plan(self.runtime)
                else:
                    chosen = choose_suspend_plan(
                        self.runtime,
                        strategy=options.strategy.value,
                        budget=options.budget,
                        model=cost_model,
                    )
            else:
                # Caller-supplied plans are validated against the live
                # topology and c_{i,j} restrictions before being trusted.
                validate_suspend_plan(
                    chosen,
                    (
                        cost_model
                        if cost_model is not None
                        else build_cost_model(self.runtime)
                    ).topology(),
                )
            if cost_model is not None:
                self._trace_suspend_plan(tracer, chosen, cost_model, options)
            sq = SuspendedQuery(
                plan_spec=self.plan_spec,
                suspend_plan=chosen,
                root_rows_emitted=self.root.tuples_emitted,
                # The query's as-if-solo time, not the shared clock: the
                # serialized image must not depend on how the scheduler
                # interleaved this query with others.
                suspended_at=self.query_now,
            )
            ctx = SuspendContext(plan=chosen, sq=sq, runtime=self.runtime)
            self.root.do_suspend(ctx)
            # Write the SuspendedQuery structure itself to disk.
            self.db.disk.write_control_bytes(
                sq.nominal_bytes(bytes_per_row=200)
            )
            # Lane value after the suspend-phase I/O: resume (possibly in
            # another process) restarts the lane here so the query's solo
            # timeline stays continuous across the gap.
            sq.query_clock = self.query_now
        finally:
            self.db.disk.set_lane(prev_lane)
            controller.unsuppress()
        self.last_suspend_cost = self.query_now - lane_start
        self.last_suspend_plan = chosen
        if io_before is not None:
            io = self.db.disk.counters.snapshot().minus(io_before)
            tracer.event(
                "query.suspend",
                ts=start,
                dur=round(self.last_suspend_cost, 6),
                plan_source=chosen.source,
                budget=options.budget,
                actual_cost=round(self.last_suspend_cost, 6),
                pages_written=io.pages_written,
            )
            tracer.metrics.histogram("suspend_cost").observe(
                self.last_suspend_cost
            )
        # Release all memory resources: the operator tree is discarded.
        self.close()
        self.status = QueryStatus.SUSPENDED
        image_store = options.resolve_image_store()
        if image_store is not None:
            # Persist last: a crash mid-commit leaves the in-memory
            # SuspendedQuery intact and a torn image the recovery scan
            # quarantines — never a half-suspended session.
            self.last_image = image_store.save(
                sq,
                self.db.state_store,
                image_id=options.image_id,
                meta=options.image_meta,
                base_image_id=(
                    options.base_image_id if options.delta else None
                ),
                tracer=self.runtime.tracer,
            )
        return sq

    def _trace_suspend_plan(self, tracer, plan, model, options) -> None:
        """Emit ``suspend.plan`` plus one ``mip.decision`` per operator."""
        est = estimate_plan_cost(plan, model)
        tracer.event(
            "suspend.plan",
            source=plan.source,
            strategy=options.strategy.value,
            budget=options.budget,
            est_suspend=round(est.suspend, 6),
            est_resume=round(est.resume, 6),
            num_ops=len(model.op_ids),
        )
        metrics = tracer.metrics
        for op_id in sorted(model.op_ids):
            decision = plan.decision(op_id)
            fields = {
                "op": op_id,
                "op_name": self.runtime.ops[op_id].name,
                "strategy": decision.strategy.value,
                "dump_suspend_cost": round(model.d_s[op_id], 6),
                "dump_resume_cost": round(model.d_r[op_id], 6),
            }
            if decision.strategy is Strategy.GOBACK:
                anchor = decision.goback_anchor
                fields["goback_anchor"] = anchor
                fields["goback_suspend_cost"] = round(
                    model.g_s.get((op_id, anchor), 0.0), 6
                )
                fields["goback_resume_cost"] = round(
                    model.g_r.get((op_id, anchor), 0.0), 6
                )
            tracer.event("mip.decision", **fields)
            metrics.counter(
                "suspend_decisions_total", strategy=decision.strategy.value
            ).inc()

    def close(self) -> None:
        """Release the operator tree and every heap resource it holds.

        Used by the suspend phase after dumping state, and by schedulers
        as the *kill* and *discard-half-resumed* primitive: afterwards
        :meth:`memory_in_use` is 0 and the session can no longer execute.
        """
        if self.runtime.ops:
            self.root.close()
        self.runtime.ops.clear()
        self.runtime.ops_by_name.clear()

    # ------------------------------------------------------------------
    # Resume phase
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        db: Database,
        sq: SuspendedQuery,
        config: Optional[EngineConfig] = None,
        priority: int = 0,
        name: Optional[str] = None,
        tracer=None,
        fold=None,
    ) -> "QuerySession":
        """Reconstruct a session from a SuspendedQuery.

        The resume phase reads the structure back from disk, recreates the
        plan, and invokes ``Resume()`` on the root, which restores every
        operator either from its dump or by rolling forward from its
        checkpoint. The returned session's next output tuple is the one
        immediately after the last delivered before suspension.
        """
        session = cls.__new__(cls)
        session.db = db
        session.plan_spec = sq.plan_spec
        session.config = config or EngineConfig()
        session.priority = priority
        session.name = name
        session.runtime = Runtime(db, session.config, tracer=tracer, query=name)
        session.runtime.fold = fold
        # Continue the query's as-if-solo clock where the suspend phase
        # left it (possibly in another process), so the lane timeline is
        # the same whatever schedule or fold the query ran under.
        session.runtime.lane.clock.advance(max(0.0, sq.query_clock))
        session.rows = []
        session.last_suspend_cost = 0.0
        session.last_suspend_plan = sq.suspend_plan
        session.last_image = None

        start = db.now
        lane_start = session.runtime.lane.now
        session_tracer = session.runtime.tracer
        io_before = (
            db.disk.counters.snapshot() if session_tracer.enabled else None
        )
        controller = session.runtime.controller
        controller.suppress()
        prev_lane = db.disk.set_lane(session.runtime.lane)
        try:
            if sq.migrated_payloads:
                sq.import_payloads(session.runtime.store)
            # Read the SuspendedQuery structure from disk.
            db.disk.read_control_bytes(sq.nominal_bytes(bytes_per_row=200))
            session.root = instantiate_plan(sq.plan_spec, session.runtime)
            ctx = ResumeContext(sq=sq, runtime=session.runtime)
            session.root.do_resume(ctx)
        finally:
            db.disk.set_lane(prev_lane)
            controller.unsuppress()
        session.last_resume_cost = session.runtime.lane.now - lane_start
        if io_before is not None:
            io = db.disk.counters.snapshot().minus(io_before)
            session_tracer.event(
                "query.resume",
                ts=start,
                dur=round(session.last_resume_cost, 6),
                plan_source=sq.suspend_plan.source,
                pages_read=io.pages_read,
                pages_written=io.pages_written,
            )
            session_tracer.metrics.histogram("resume_cost").observe(
                session.last_resume_cost
            )
        session.status = QueryStatus.RUNNING
        return session

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def op_named(self, name: str):
        return self.runtime.op_named(name)

    def operator_names(self) -> dict[int, str]:
        return {op_id: op.name for op_id, op in self.runtime.ops.items()}

    def memory_in_use(self) -> int:
        """Bytes of operator heap state currently held (page-granular).

        The paper's motivating resource: a suspended query must release
        all of it. After :meth:`suspend` the operator tree is discarded
        and this returns 0; the dumped state lives on (simulated) disk.
        """
        return self.runtime.memory_in_use()

    def stats_rows(self) -> list[dict]:
        """Per-operator runtime statistics (for monitoring/reports).

        One row per operator: emitted tuple count, attributed work
        (simulated time units), current heap size in tuples, and the
        number of live checkpoints in the contract graph.
        """
        graph = self.runtime.graph
        rows = []
        for op_id in sorted(self.runtime.ops):
            op = self.runtime.ops[op_id]
            latest = graph.latest_checkpoint(op_id)
            rows.append(
                {
                    "op": op.name,
                    "type": type(op).__name__,
                    "emitted": op.tuples_emitted,
                    "work": round(op.work, 2),
                    "heap_tuples": op.heap_tuples(),
                    "checkpoints": len(graph.checkpoints_of(op_id)),
                    "latest_ckpt_seq": latest.seq if latest else 0,
                }
            )
        return rows

    def describe_plan(self) -> str:
        """Indented tree rendering of the live operator plan."""

        def render(op, depth: int) -> list[str]:
            lines = [f"{'  ' * depth}{op.name} ({type(op).__name__})"]
            for child in op.children:
                lines.extend(render(child, depth + 1))
            return lines

        return "\n".join(render(self.root, 0))
