"""Suspend-aware plan choice (Section 7).

A standard optimizer picks the plan with the lowest expected execution
cost. When suspends are expected, the expected suspend/resume overhead
should be added before comparing — which can flip the choice, as the
paper's Examples 9 and 10 show. ``choose_plan_example9`` /
``choose_plan_example10`` reproduce those flips, and
``nlj_smj_crossover_suspend_point`` computes the buffer-fill crossover
the paper reports as 16,020 tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.planning.cost_model import (
    Example9Scenario,
    Example10Scenario,
    JoinPlanCosts,
    hhj_costs,
    nlj_costs,
    smj_costs,
    smj_costs_presorted_inner,
)


@dataclass(frozen=True)
class PlanChoice:
    """The winning plan under each assumption."""

    without_suspend: str
    with_suspend: str
    candidates: tuple[JoinPlanCosts, ...]

    @property
    def flipped(self) -> bool:
        return self.without_suspend != self.with_suspend


def _choose(candidates: tuple[JoinPlanCosts, ...]) -> PlanChoice:
    without = min(candidates, key=lambda c: c.run_io)
    with_s = min(candidates, key=lambda c: c.total_with_suspend)
    return PlanChoice(
        without_suspend=without.plan,
        with_suspend=with_s.plan,
        candidates=candidates,
    )


def choose_plan_example9(
    sc: Example9Scenario = Example9Scenario(),
) -> PlanChoice:
    """HHJ vs SMJ (Figure 15): HHJ wins without suspends, SMJ with."""
    return _choose((hhj_costs(sc), smj_costs(sc)))


def choose_plan_example10(
    sc: Example10Scenario = Example10Scenario(),
    suspend_at_buffer_fill: float = 80_000,
) -> PlanChoice:
    """NLJ vs SMJ (Example 10): the suspend flips the optimizer's choice.

    With the paper's defaults (suspend when the NLJ buffer holds 80,000
    tuples): NLJ costs 10,000 + 1,333 I/Os, SMJ costs 10,100 + 167.
    """
    return _choose(
        (
            nlj_costs(sc, suspend_at_buffer_fill=suspend_at_buffer_fill),
            smj_costs_presorted_inner(sc, worst_case_suspend=True),
        )
    )


def nlj_smj_crossover_suspend_point(
    sc: Example10Scenario = Example10Scenario(),
) -> float:
    """Buffer fill (in tuples) above which SMJ beats NLJ under a suspend.

    Solving run_nlj + fill/(sel*tpp) = run_smj + overhead_smj for fill
    gives the paper's 16,020 tuples with the default scenario.
    """
    nlj = nlj_costs(sc, suspend_at_buffer_fill=0)
    smj = smj_costs_presorted_inner(sc, worst_case_suspend=True)
    gap = smj.total_with_suspend - nlj.run_io
    return gap * sc.filter_selectivity * sc.tuples_per_page
