"""Suspend-aware physical plan choice over real catalogs (Section 7).

While :mod:`repro.planning.cost_model` reproduces the paper's worked
examples at their exact sizes, this module is the *operational* version:
given a database catalog, a join query description, and a memory grant,
it builds the candidate physical plans (block NLJ, sort-merge join,
hybrid hash join), estimates each plan's execution I/O and its expected
suspend/resume overhead from table-level statistics, and picks the winner
— optionally accounting for expected suspends, which can flip the choice
exactly as the paper's Examples 9 and 10 predict.

The returned candidate carries an executable
:class:`~repro.engine.plan.PlanSpec`, so callers can run the chosen plan
directly on the database.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.engine.plan import (
    FilterSpec,
    HybridHashJoinSpec,
    MergeJoinSpec,
    NLJSpec,
    PlanSpec,
    ScanSpec,
    SortSpec,
)
from repro.relational.expressions import EquiJoinCondition, Predicate
from repro.storage.database import Database


@dataclass(frozen=True)
class JoinQuery:
    """SELECT * FROM left, right WHERE filter(left) AND left.a = right.b."""

    left_table: str
    right_table: str
    predicate: Predicate
    filter_selectivity: float
    join_condition: EquiJoinCondition
    #: Whether the right table is already stored in join-key order (so a
    #: merge join can scan it directly, as in Example 10).
    right_sorted: bool = False


@dataclass
class PlanCandidate:
    """One physical alternative with its estimated costs (in page I/Os)."""

    name: str
    spec: PlanSpec
    run_io: float
    suspend_overhead_io: float

    def total(self, expect_suspend: bool) -> float:
        return self.run_io + (self.suspend_overhead_io if expect_suspend else 0)


@dataclass
class AdvisorChoice:
    """The advisor's verdict under both assumptions."""

    without_suspend: PlanCandidate
    with_suspend: PlanCandidate
    candidates: list

    @property
    def flipped(self) -> bool:
        return self.without_suspend.name != self.with_suspend.name


def candidate_plans(
    db: Database,
    query: JoinQuery,
    memory_tuples: int,
    suspend_point_fraction: float = 0.5,
    sort_buffer_tuples: Optional[int] = None,
) -> list[PlanCandidate]:
    """Build and cost the candidate plans.

    ``suspend_point_fraction`` is where within a buffer the (single)
    expected suspend lands; the paper argues 0.5 on average.
    ``sort_buffer_tuples`` overrides the SMJ sort-buffer size (Example 10
    grants SMJ a much smaller buffer than the NLJ — smaller buffers are
    suspend-friendlier). The SMJ candidate is omitted for modulus joins,
    whose keys are not ordered by the stored sort columns.
    """
    left = db.catalog.stats(query.left_table)
    right = db.catalog.stats(query.right_table)
    left_table = db.catalog.table(query.left_table)
    tpp = left_table.tuples_per_page
    sel = max(query.filter_selectivity, 1e-9)
    filtered = left.num_tuples * sel

    def pages(tuples: float) -> float:
        return tuples / tpp

    filtered_scan = FilterSpec(
        ScanSpec(query.left_table), query.predicate, label="adv_filter"
    )

    candidates = []

    # --- Block NLJ: filtered left as the outer. -----------------------
    nlj_buffer = min(memory_tuples, max(1, int(filtered)) )
    batches = max(1, math.ceil(filtered / nlj_buffer))
    nlj_run = pages(left.num_tuples) + batches * pages(right.num_tuples)
    # GoBack overhead: re-read enough of L to refill the buffer fraction.
    nlj_overhead = pages(suspend_point_fraction * nlj_buffer / sel)
    candidates.append(
        PlanCandidate(
            name="NLJ",
            spec=NLJSpec(
                outer=filtered_scan,
                inner=ScanSpec(query.right_table),
                condition=query.join_condition,
                buffer_tuples=nlj_buffer,
                label="adv_nlj",
            ),
            run_io=nlj_run,
            suspend_overhead_io=nlj_overhead,
        )
    )

    # --- Sort-merge join (plain-equality joins only). -------------------
    if query.join_condition.modulus:
        return candidates + [_hhj_candidate(
            db, query, memory_tuples, filtered, pages, filtered_scan
        )]
    # Sorting splits memory between the two sorts unless the right side
    # is pre-sorted.
    if sort_buffer_tuples is not None:
        sort_buffer = sort_buffer_tuples
    else:
        sort_buffer = (
            memory_tuples if query.right_sorted else memory_tuples // 2
        )
    sort_buffer = max(1, sort_buffer)
    smj_run = pages(left.num_tuples) + 2 * pages(filtered)
    if query.right_sorted:
        smj_run += pages(right.num_tuples)
        right_spec: PlanSpec = ScanSpec(query.right_table)
    else:
        smj_run += 3 * pages(right.num_tuples)
        right_spec = SortSpec(
            ScanSpec(query.right_table),
            key_columns=(query.join_condition.right_column,),
            buffer_tuples=sort_buffer,
            label="adv_sort_right",
        )
    # Worst-case GoBack overhead: the sort buffer full at suspend time;
    # after phase 1, sublists are materialization points and the overhead
    # collapses to cursor repositioning.
    smj_overhead = math.ceil(pages(sort_buffer / sel))
    candidates.append(
        PlanCandidate(
            name="SMJ",
            spec=MergeJoinSpec(
                left=SortSpec(
                    filtered_scan,
                    key_columns=(query.join_condition.left_column,),
                    buffer_tuples=sort_buffer,
                    label="adv_sort_left",
                ),
                right=right_spec,
                condition=query.join_condition,
                label="adv_smj",
            ),
            run_io=smj_run,
            suspend_overhead_io=smj_overhead,
        )
    )

    candidates.append(
        _hhj_candidate(db, query, memory_tuples, filtered, pages, filtered_scan)
    )
    return candidates


def _hhj_candidate(db, query, memory_tuples, filtered, pages, filtered_scan):
    """Hybrid hash join, building on the filtered left input."""
    right = db.catalog.stats(query.right_table)
    in_memory = min(memory_tuples, filtered)
    mem_fraction = in_memory / filtered if filtered else 1.0
    spilled_build = filtered - in_memory
    spilled_probe = right.num_tuples * (1 - mem_fraction)
    hhj_run = (
        pages(db.catalog.stats(query.left_table).num_tuples)
        + pages(right.num_tuples)
        + 2 * pages(spilled_build)
        + 2 * pages(spilled_probe)
    )
    # A suspend during the join phase finds the memory partitions with no
    # materialization point: GoBack re-scans the build input.
    hhj_overhead = pages(
        db.catalog.stats(query.left_table).num_tuples
    ) + pages(spilled_build)
    num_partitions = max(2, math.ceil(filtered / max(1, in_memory)) + 1)
    memory_partitions = max(1, round(mem_fraction * num_partitions))
    return PlanCandidate(
        name="HHJ",
        spec=HybridHashJoinSpec(
            build=filtered_scan,
            probe=ScanSpec(query.right_table),
            condition=query.join_condition,
            num_partitions=num_partitions,
            memory_partitions=min(memory_partitions, num_partitions),
            label="adv_hhj",
        ),
        run_io=hhj_run,
        suspend_overhead_io=hhj_overhead,
    )


def choose_join_plan(
    db: Database,
    query: JoinQuery,
    memory_tuples: int,
    suspend_point_fraction: float = 0.5,
    sort_buffer_tuples: Optional[int] = None,
    allowed: Optional[set] = None,
) -> AdvisorChoice:
    """Pick the cheapest candidate with and without expected suspends.

    ``allowed`` restricts the candidate set (the paper's examples each
    compare exactly two plans)."""
    candidates = candidate_plans(
        db, query, memory_tuples, suspend_point_fraction, sort_buffer_tuples
    )
    if allowed is not None:
        candidates = [c for c in candidates if c.name in allowed]
    if not candidates:
        raise ValueError("no candidate plans remain after filtering")
    without = min(candidates, key=lambda c: c.total(expect_suspend=False))
    with_s = min(candidates, key=lambda c: c.total(expect_suspend=True))
    return AdvisorChoice(
        without_suspend=without, with_suspend=with_s, candidates=candidates
    )
