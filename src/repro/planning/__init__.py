"""Suspend-aware query planning (Section 7 of the paper)."""

from repro.planning.cost_model import (
    Example9Scenario,
    Example10Scenario,
    hhj_costs,
    nlj_costs,
    smj_costs,
    smj_costs_presorted_inner,
)
from repro.planning.planner import (
    PlanChoice,
    choose_plan_example9,
    choose_plan_example10,
    nlj_smj_crossover_suspend_point,
)
from repro.planning.advisor import (
    AdvisorChoice,
    JoinQuery,
    PlanCandidate,
    candidate_plans,
    choose_join_plan,
)

__all__ = [
    "AdvisorChoice",
    "JoinQuery",
    "PlanCandidate",
    "candidate_plans",
    "choose_join_plan",
    "Example10Scenario",
    "Example9Scenario",
    "PlanChoice",
    "choose_plan_example10",
    "choose_plan_example9",
    "hhj_costs",
    "nlj_costs",
    "nlj_smj_crossover_suspend_point",
    "smj_costs",
    "smj_costs_presorted_inner",
]
