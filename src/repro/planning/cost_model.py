"""Analytical I/O cost model for suspend-aware planning (Section 7).

The paper motivates suspend-aware query optimization with two worked
examples whose costs are counted in disk I/Os (pages). This module
reproduces that arithmetic exactly:

- **Example 9 / Figure 15**: hybrid hash join vs sort-merge join for
  ``R ⋈ S`` with a filter on R. Without suspends HHJ wins; with a suspend
  during the last phase of the join, SMJ wins because HHJ's in-memory
  build partitions have no materialization point — suspending them means
  either dumping ~memory-size state or recomputing the filtered build
  side from scratch.
- **Example 10**: block NLJ vs sort-merge join with a pre-sorted inner.
  Without suspends NLJ wins (10,000 vs 10,100 I/Os); a suspend when the
  NLJ outer buffer holds 80,000 tuples costs ~1,333 I/Os to GoBack versus
  SMJ's worst case of ~167, flipping the choice; the crossover is at a
  buffer fill of 16,020 tuples.

Costs here are pure I/O counts (the paper ignores CPU and result-writing
in these examples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _pages(tuples: float, tuples_per_page: int) -> float:
    return tuples / tuples_per_page


@dataclass(frozen=True)
class JoinPlanCosts:
    """I/O costs of one candidate plan, with and without a suspend."""

    plan: str
    run_io: float
    suspend_overhead_io: float

    @property
    def total_with_suspend(self) -> float:
        return self.run_io + self.suspend_overhead_io


@dataclass(frozen=True)
class Example9Scenario:
    """Example 9: SELECT * FROM R, S WHERE R.a < 100 AND R.b = S.c.

    Defaults are the paper's numbers: |R| = 2,200,000, |S| = 250,000,
    filter selectivity 0.1 (220,000 R tuples survive), 150,000 tuples of
    main memory, 100 tuples per disk page.
    """

    r_tuples: int = 2_200_000
    s_tuples: int = 250_000
    filter_selectivity: float = 0.1
    memory_tuples: int = 150_000
    tuples_per_page: int = 100

    @property
    def filtered_r(self) -> float:
        return self.r_tuples * self.filter_selectivity


def hhj_costs(sc: Example9Scenario) -> JoinPlanCosts:
    """Hybrid hash join building on filtered R.

    The in-memory fraction of the build side never touches disk; the
    spilled fractions of both sides are written and read once. A suspend
    during the last phase of the join finds the in-memory partitions with
    no materialization point: under a tight suspend budget the only
    option is GoBack to the start of the build, i.e. re-reading R and
    re-partitioning the spilled fraction.
    """
    build = sc.filtered_r
    in_memory = min(sc.memory_tuples, build)
    mem_fraction = in_memory / build if build else 1.0
    spilled_build = build - in_memory
    spilled_probe = sc.s_tuples * (1.0 - mem_fraction)
    tpp = sc.tuples_per_page
    run_io = (
        _pages(sc.r_tuples, tpp)  # read R through the filter
        + _pages(sc.s_tuples, tpp)  # read S
        + 2 * _pages(spilled_build, tpp)  # write + read spilled build
        + 2 * _pages(spilled_probe, tpp)  # write + read spilled probe
    )
    # Suspend during the last join phase: GoBack for the memory-resident
    # partitions means redoing the build scan of R (the filter's input),
    # plus re-partitioning writes for the spilled build fraction.
    suspend_overhead = _pages(sc.r_tuples, tpp) + _pages(spilled_build, tpp)
    return JoinPlanCosts("HHJ", run_io, suspend_overhead)


def smj_costs(sc: Example9Scenario) -> JoinPlanCosts:
    """Sort-merge join sorting both inputs with the available memory.

    Every sorted sublist is a materialization point, so a suspend during
    the merge-join phase merely records cursor positions; resume re-reads
    one block per sublist.
    """
    tpp = sc.tuples_per_page
    build = sc.filtered_r
    run_io = (
        _pages(sc.r_tuples, tpp)  # read R through the filter
        + 2 * _pages(build, tpp)  # write + read sorted R sublists
        + _pages(sc.s_tuples, tpp)  # read S
        + 2 * _pages(sc.s_tuples, tpp)  # write + read sorted S sublists
    )
    r_sublists = math.ceil(build / sc.memory_tuples)
    s_sublists = math.ceil(sc.s_tuples / sc.memory_tuples)
    suspend_overhead = r_sublists + s_sublists  # reposition one block each
    return JoinPlanCosts("SMJ", run_io, suspend_overhead)


@dataclass(frozen=True)
class Example10Scenario:
    """Example 10: same query, different sizes; S is pre-sorted on c.

    Defaults are the paper's: |R| = 300,000, |S| = 350,000, filter
    selectivity 0.6 (180,000 R tuples survive), NLJ outer buffer 90,000
    tuples, SMJ sort buffer 10,000 tuples, 100 tuples per page.
    """

    r_tuples: int = 300_000
    s_tuples: int = 350_000
    filter_selectivity: float = 0.6
    nlj_buffer_tuples: int = 90_000
    sort_buffer_tuples: int = 10_000
    tuples_per_page: int = 100

    @property
    def filtered_r(self) -> float:
        return self.r_tuples * self.filter_selectivity


def nlj_costs(
    sc: Example10Scenario, suspend_at_buffer_fill: float = 0
) -> JoinPlanCosts:
    """Block NLJ with filtered R as the outer.

    Run cost: one scan of R plus one scan of S per outer batch (the paper
    counts 3,000 + 2 x 3,500 = 10,000 I/Os). The GoBack suspend overhead
    re-reads enough of R to regenerate the outer buffer fill.
    """
    tpp = sc.tuples_per_page
    batches = math.ceil(sc.filtered_r / sc.nlj_buffer_tuples)
    run_io = _pages(sc.r_tuples, tpp) + batches * _pages(sc.s_tuples, tpp)
    suspend_overhead = _pages(
        suspend_at_buffer_fill / sc.filter_selectivity, tpp
    )
    return JoinPlanCosts("NLJ", run_io, suspend_overhead)


def smj_costs_presorted_inner(
    sc: Example10Scenario, worst_case_suspend: bool = True
) -> JoinPlanCosts:
    """SMJ with pre-sorted S: sort only filtered R.

    Run cost: read R (3,000), write sorted R sublists (1,800), read them
    back in the merge (1,800), read pre-sorted S (3,500) = 10,100. The
    worst-case suspend lands with the sort buffer full: GoBack re-reads
    buffer/selectivity tuples of R (~167 pages).
    """
    tpp = sc.tuples_per_page
    sorted_r = sc.filtered_r
    run_io = (
        _pages(sc.r_tuples, tpp)
        + 2 * _pages(sorted_r, tpp)
        + _pages(sc.s_tuples, tpp)
    )
    if worst_case_suspend:
        # Physical pages are integral; the paper rounds 166.67 up to 167.
        suspend_overhead = math.ceil(
            _pages(sc.sort_buffer_tuples / sc.filter_selectivity, tpp)
        )
    else:
        suspend_overhead = _pages(
            sc.sort_buffer_tuples / (2 * sc.filter_selectivity), tpp
        )
    return JoinPlanCosts("SMJ", run_io, suspend_overhead)
