"""Sharded execution: scaling and global-suspend latency vs one engine.

Measures, on the virtual clock:

- **scan/join scaling** — the makespan (max over shard clocks) of a
  partitioned scan and of the shuffle hash join at each shard count,
  against the single-engine time for the same plan. Sharded virtual
  time should fall as shards are added (the join pays a shuffle tax, so
  its speedup is sublinear by design);
- **global-suspend latency** — the cost of the two-phase consistent cut
  (member images commit in parallel, so latency is the slowest shard)
  against a single-engine suspend of the same recipe at the same
  delivered-row point;
- **correctness gates** — sharded output must equal the single-engine
  multiset, and the suspended cut must resume to delivery identical to
  the uninterrupted sharded run.

The snapshot lands in ``BENCH_shard.json`` at the repo root; the CI
``shard-smoke`` job runs the reduced suite (``REPRO_BENCH_QUICK=1``)
and fails on any correctness gate.

Run directly (``python benchmarks/bench_shard.py [--quick]``) or via
pytest (``pytest benchmarks/bench_shard.py``).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import sys
import tempfile
import time

from repro.core.lifecycle import QuerySession
from repro.durability import build_recipe
from repro.engine.plan import ScanSpec
from repro.shard import ShardCoordinator

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_shard.json"


def _params() -> dict:
    if QUICK:
        return {"scale": 4, "shard_counts": (1, 2, 4)}
    return {"scale": 1, "shard_counts": (1, 2, 4, 8)}


def _single_engine(plan, scale: int) -> tuple[list, float]:
    db, recipe_plan = build_recipe("hashjoin", scale=scale)
    spec = plan if plan is not None else recipe_plan
    rows = QuerySession(db, spec).execute().rows
    return rows, db.now


def _sharded(
    plan, scale: int, shards: int, quantum_rows: int = 64
) -> tuple[list, float]:
    db, recipe_plan = build_recipe("hashjoin", scale=scale)
    coord = ShardCoordinator(
        db,
        plan if plan is not None else recipe_plan,
        num_shards=shards,
        quantum_rows=quantum_rows,
    )
    rows = coord.run()
    return rows, coord.global_now()


def measure_scaling(scale: int, shard_counts) -> dict:
    out: dict = {}
    for name, plan in (("scan", ScanSpec("P")), ("join", None)):
        single_rows, single_time = _single_engine(plan, scale)
        series = []
        ok = True
        for shards in shard_counts:
            rows, elapsed = _sharded(plan, scale, shards)
            ok = ok and sorted(rows) == sorted(single_rows)
            series.append(
                {
                    "shards": shards,
                    "virtual_time": round(elapsed, 2),
                    "speedup": round(single_time / elapsed, 3),
                }
            )
        out[name] = {
            "rows": len(single_rows),
            "single_engine_time": round(single_time, 2),
            "per_shard": series,
            "output_equal": ok,
        }
    return out


def measure_suspend_latency(scale: int, shard_counts) -> dict:
    """Global-cut latency per shard count vs one engine's suspend."""
    # A small quantum keeps a pass boundary (= a legal cut point) ahead
    # of completion even at quick-mode data sizes.
    quantum = 8
    db, plan = build_recipe("hashjoin", scale=scale)
    session = QuerySession(db, plan)
    session.execute(max_rows=48)
    session.suspend()
    single_cost = session.last_suspend_cost

    series = []
    consistent = True
    for shards in shard_counts:
        if shards < 2:
            continue
        full_rows, _ = _sharded(None, scale, shards, quantum_rows=quantum)
        cut_rows = max(1, len(full_rows) // 2)
        db2, plan2 = build_recipe("hashjoin", scale=scale)
        coord = ShardCoordinator(
            db2, plan2, num_shards=shards, quantum_rows=quantum
        )
        before = coord.run(max_rows=cut_rows)
        with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as root:
            report = coord.suspend_global(root, budget=math.inf)
            db3, plan3 = build_recipe("hashjoin", scale=scale)
            resumed = ShardCoordinator.resume(db3, root, report.gid)
            after = resumed.run()
        consistent = consistent and before + after == full_rows
        series.append(
            {
                "shards": shards,
                "global_latency": round(report.latency, 3),
                "total_cost": round(report.total_cost, 3),
                "vs_single_engine": round(report.latency / single_cost, 3),
            }
        )
    return {
        "single_engine_suspend_cost": round(single_cost, 3),
        "per_shard": series,
        "cut_consistent": consistent,
    }


def measure() -> dict:
    params = _params()
    start = time.perf_counter()
    scaling = measure_scaling(params["scale"], params["shard_counts"])
    suspend = measure_suspend_latency(params["scale"], params["shard_counts"])
    wall_seconds = time.perf_counter() - start
    ok = (
        scaling["scan"]["output_equal"]
        and scaling["join"]["output_equal"]
        and suspend["cut_consistent"]
    )
    return {
        "benchmark": "sharded_execution",
        "quick": QUICK,
        "params": {
            "scale": params["scale"],
            "shard_counts": list(params["shard_counts"]),
        },
        "wall_seconds": round(wall_seconds, 2),
        "scaling": scaling,
        "global_suspend": suspend,
        "pass": ok,
    }


def run_and_snapshot() -> dict:
    result = measure()
    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_shard_bench(benchmark):
    from benchmarks.conftest import once

    result = once(benchmark, run_and_snapshot)
    print(json.dumps(result, indent=2))
    assert result["scaling"]["scan"]["output_equal"]
    assert result["scaling"]["join"]["output_equal"]
    assert result["global_suspend"]["cut_consistent"], (
        "resumed delivery diverged from the uninterrupted sharded run"
    )
    # Partitioned scans split IO evenly: time must drop with shards.
    scan = result["scaling"]["scan"]["per_shard"]
    assert scan[-1]["virtual_time"] < scan[0]["virtual_time"]


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        QUICK = True
    snapshot = run_and_snapshot()
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {SNAPSHOT_PATH}]")
    raise SystemExit(0 if snapshot["pass"] else 1)
