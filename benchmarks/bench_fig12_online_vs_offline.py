"""Figure 12: online LP vs the offline/static optimizer under skewed data.

Paper setup: NLJ_S over a ~3M-tuple table whose filter selectivity is 0.1
in the first two-thirds and 0.9 in the rest (effective ~0.385 — above the
DumpState/GoBack crossover). The static optimizer, seeing only the
table-level statistic, picks all-GoBack everywhere; the online optimizer
sees runtime state and picks all-DumpState while execution is inside the
low-selectivity prefix, then all-GoBack afterwards.
"""

import pytest

from repro.harness.figures import fig12_rows
from repro.harness.report import format_table

from benchmarks.conftest import once, record_result

SCALE = 100
# Suspend points along the scan of R (30,000 tuples at this scale); the
# skew boundary sits at 20,000.
SUSPEND_POINTS = (4_000, 10_000, 16_000, 19_000, 23_000, 28_000)


def sweep():
    return fig12_rows(SUSPEND_POINTS, scale=SCALE)


def test_fig12_online_vs_offline(benchmark):
    rows = once(benchmark, sweep)
    text = format_table(
        rows,
        title=(
            "Figure 12 - online (LP) vs offline (static) optimizer on the "
            "skewed table; skew boundary at scan position 20,000"
        ),
    )
    record_result("fig12_online_vs_offline", text)

    low = [r for r in rows if r["region_selectivity"] == 0.1]
    high = [r for r in rows if r["region_selectivity"] == 0.9]
    # Static always picks GoBack (table-level selectivity ~0.37 > 0.28).
    assert all(r["static_choice"] == "goback" for r in rows)
    # Online adapts: DumpState in the low-selectivity prefix, GoBack after.
    assert all(r["online_choice"] == "dump" for r in low)
    assert all(r["online_choice"] == "goback" for r in high)
    # In the low region the online plan wins clearly.
    for r in low:
        assert r["online_overhead"] < r["static_overhead"]
    # In the high region the two coincide.
    for r in high:
        assert r["online_overhead"] <= r["static_overhead"] + 1.0
