"""Continuation-token serving under load: latency, fairness, determinism.

Drives the deterministic load generator (:mod:`repro.serve.loadgen`)
against one :class:`~repro.serve.service.QueryService`: every simulated
client opens a query, then returns round-robin with its continuation
token until the query completes. The full run holds **>= 1000 sessions
concurrently suspended** — each an outstanding token backed by a
durable (delta) image — and reports:

- per-request latency (resume + quantum + suspend on the virtual
  clock): p50/p90/p99/max;
- fairness: the Jain index over per-session service time, overall and
  per catalog plan (identical plans must come out at 1.0);
- determinism: each session's concatenated output rows are digested
  against an uninterrupted solo run of the same plan — any divergence
  fails the benchmark;
- delta adoption: repeat suspends must commit delta images.

The snapshot lands in ``BENCH_serve.json`` at the repo root; the CI
``serve-smoke`` job runs the reduced suite (``REPRO_BENCH_QUICK=1``)
and fails on any determinism divergence.

Run directly (``python benchmarks/bench_serve.py [--quick]``) or via
pytest (``pytest benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

from repro.serve import run_loadgen

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"
#: The full run must hold at least this many concurrent sessions.
CONCURRENCY_TARGET = 1000


def _params() -> dict:
    if QUICK:
        return {"sessions": 120, "scale": 16, "quantum_rows": 32}
    return {"sessions": 1050, "scale": 8, "quantum_rows": 32}


def measure() -> dict:
    params = _params()
    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        report = run_loadgen(root, seed=1, **params)
    wall_seconds = time.perf_counter() - start
    concurrency_ok = QUICK or (
        report["concurrent_peak"] >= CONCURRENCY_TARGET
    )
    return {
        "benchmark": "continuation_token_serving",
        "quick": QUICK,
        "concurrency_target": None if QUICK else CONCURRENCY_TARGET,
        "wall_seconds": round(wall_seconds, 2),
        "requests_per_sec": round(report["requests"] / wall_seconds, 1),
        **report,
        "pass": report["determinism"]["ok"] and concurrency_ok,
    }


def run_and_snapshot() -> dict:
    result = measure()
    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_serve_load(benchmark):
    from benchmarks.conftest import once

    result = once(benchmark, run_and_snapshot)
    print(json.dumps(result, indent=2))
    assert result["determinism"]["ok"], (
        "token-resumed output diverged from uninterrupted execution: "
        f"{result['determinism']['divergent_sessions']}"
    )
    assert result["completed"] == result["sessions"]
    assert result["images"]["delta_commits"] > 0, (
        "repeat suspends never committed a delta image"
    )
    if not QUICK:
        assert result["concurrent_peak"] >= CONCURRENCY_TARGET


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        QUICK = True
    snapshot = run_and_snapshot()
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {SNAPSHOT_PATH}]")
    raise SystemExit(0 if snapshot["pass"] else 1)
