"""Ablations: quantify the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of its design claims:

1. *Contract migration is crucial for sort* (Section 4): with migration
   disabled, a parent's contract stays pinned to the sort's phase-1
   start, so a GoBack during the merge phase redoes the whole build
   instead of repositioning cursors.
2. *Proactive checkpointing bounds GoBack cost*: with only the initial
   checkpoints (no minimal-heap-state checkpoints), GoBack redo grows
   with execution progress instead of staying bounded by one buffer
   refill.
3. *The Figure 8 crossover tracks the write/read cost ratio*: the
   all-DumpState/all-GoBack crossover selectivity is r/(w+r) up to CPU
   noise, so doubling the write cost moves it left.
"""

import pytest

from repro import Database, QuerySession
from repro.engine.config import EngineConfig
from repro.harness.experiments import (
    measure_suspend_overhead,
    nlj_buffer_trigger,
    root_rows_trigger,
)
from repro.harness.report import format_table
from repro.storage.disk import IOCostModel
from repro.workloads import build_nlj_s, build_smj_s

from benchmarks.conftest import once, record_result

SCALE = 200


def ablate_contract_migration():
    rows = []
    factory = lambda: build_smj_s(selectivity=0.5, scale=SCALE)
    # Suspend right after the merge join's first output tuple: the only
    # contract the sorts hold was signed at query start (the merge join
    # has not reached a packet boundary yet). Migration re-pointed it to
    # the sorts' phase-boundary checkpoints as the build progressed;
    # without migration it still targets the empty initial checkpoint.
    trigger = root_rows_trigger("mj", 1)
    for migration in (True, False):
        config = EngineConfig(contract_migration=migration)
        r = measure_suspend_overhead(
            factory, trigger, "all_goback", config=config
        )
        rows.append(
            {
                "contract_migration": "on" if migration else "off",
                "total_overhead": round(r.total_overhead, 1),
                "resume_cost": round(r.resume_cost, 1),
            }
        )
    return rows


def ablate_proactive_checkpointing():
    rows = []
    factory = lambda: build_nlj_s(selectivity=0.9, scale=SCALE)
    _, plan = factory()
    # Suspend during the third buffer fill: with proactive checkpointing
    # the fulfilling checkpoint is the last pass boundary; without it,
    # GoBack falls back to the initial checkpoint.
    trigger = root_rows_trigger("scan_R", int(2.5 * plan.buffer_tuples / 0.9))
    for proactive in (True, False):
        config = EngineConfig(proactive_checkpointing=proactive)
        r = measure_suspend_overhead(
            factory, trigger, "all_goback", config=config
        )
        rows.append(
            {
                "proactive_checkpoints": "on" if proactive else "off",
                "total_overhead": round(r.total_overhead, 1),
                "resume_cost": round(r.resume_cost, 1),
            }
        )
    return rows


def crossover_for_ratio(write_cost):
    """Lowest swept selectivity where all-GoBack beats all-DumpState."""
    cost_model = IOCostModel(page_write_cost=write_cost)
    for sel in (0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.7, 0.9):
        def factory():
            db, plan = build_nlj_s(selectivity=sel, scale=SCALE)
            db.cost_model.page_write_cost = write_cost
            return db, plan

        # Rebuild with the custom cost model (build_nlj_s constructs the
        # default Database; patch the write cost before any charging).
        _, plan = build_nlj_s(selectivity=sel, scale=SCALE)
        trigger = nlj_buffer_trigger("nlj", plan.buffer_tuples // 2)
        dump = measure_suspend_overhead(factory, trigger, "all_dump")
        goback = measure_suspend_overhead(factory, trigger, "all_goback")
        if goback.total_overhead <= dump.total_overhead:
            return sel
    return 1.0


def ablate_cost_ratio():
    rows = []
    for write_cost in (1.5, 2.5, 5.0):
        crossover = crossover_for_ratio(write_cost)
        rows.append(
            {
                "write/read_ratio": write_cost,
                "predicted_r/(w+r)": round(1 / (1 + write_cost), 3),
                "measured_crossover_sel": crossover,
            }
        )
    return rows


def test_ablation_contract_migration(benchmark):
    rows = once(benchmark, ablate_contract_migration)
    text = format_table(
        rows,
        title=(
            "Ablation - contract migration (all-GoBack suspend right "
            "after the merge join's first output)"
        ),
    )
    record_result("ablation_contract_migration", text)
    on = next(r for r in rows if r["contract_migration"] == "on")
    off = next(r for r in rows if r["contract_migration"] == "off")
    # Without migration the whole build is redone: far costlier resume.
    assert off["total_overhead"] > on["total_overhead"] * 2


def test_ablation_proactive_checkpointing(benchmark):
    rows = once(benchmark, ablate_proactive_checkpointing)
    text = format_table(
        rows,
        title=(
            "Ablation - proactive checkpointing (all-GoBack suspend in "
            "the third NLJ pass)"
        ),
    )
    record_result("ablation_proactive_checkpointing", text)
    on = next(r for r in rows if r["proactive_checkpoints"] == "on")
    off = next(r for r in rows if r["proactive_checkpoints"] == "off")
    assert off["total_overhead"] > on["total_overhead"] * 1.5


def ablate_buffer_pool():
    """Why the experiments run without a buffer pool: with one sized to
    the (scaled) tables, GoBack's recomputation reads hit cache and the
    dump-vs-goback tradeoff collapses — misrepresenting the paper's
    big-table regime where redo is real I/O."""
    from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
    from repro.engine.plan import FilterSpec, NLJSpec, ScanSpec
    from repro.relational.expressions import EquiJoinCondition, UniformSelect

    def factory_for(pool_pages):
        def factory():
            db = Database(buffer_pool_pages=pool_pages)
            db.create_table(
                "R", BASE_SCHEMA, generate_uniform_table(11_000, seed=7)
            )
            db.create_table(
                "T", BASE_SCHEMA, generate_uniform_table(1_100, seed=8)
            )
            plan = NLJSpec(
                outer=FilterSpec(
                    ScanSpec("R", label="scan_R"),
                    UniformSelect(1, 0.1),
                    label="filter",
                ),
                inner=ScanSpec("T", label="scan_T"),
                condition=EquiJoinCondition(0, 0, modulus=500),
                buffer_tuples=1_000,
                label="nlj",
            )
            return db, plan

        return factory

    rows = []
    trigger = nlj_buffer_trigger("nlj", 500)
    for pool_pages in (0, 256):
        r = measure_suspend_overhead(
            factory_for(pool_pages), trigger, "all_goback"
        )
        rows.append(
            {
                "buffer_pool_pages": pool_pages,
                "goback_total_overhead": round(r.total_overhead, 1),
            }
        )
    return rows


def test_ablation_buffer_pool(benchmark):
    rows = once(benchmark, ablate_buffer_pool)
    text = format_table(
        rows,
        title=(
            "Ablation - buffer pool vs GoBack redo cost (all-GoBack, "
            "NLJ_S-like plan, selectivity 0.1)"
        ),
    )
    record_result("ablation_buffer_pool", text)
    without = rows[0]["goback_total_overhead"]
    with_pool = rows[1]["goback_total_overhead"]
    # With the pool covering the scanned region, redo is nearly free —
    # which is exactly why the paper-regime experiments disable it.
    assert with_pool < without / 3


def test_ablation_cost_ratio(benchmark):
    rows = once(benchmark, ablate_cost_ratio)
    text = format_table(
        rows,
        title=(
            "Ablation - Figure 8 crossover selectivity vs write/read "
            "cost ratio"
        ),
    )
    record_result("ablation_cost_ratio", text)
    crossovers = [r["measured_crossover_sel"] for r in rows]
    # Higher write cost makes dumping less attractive: crossover moves
    # left (GoBack wins earlier)... note w appears in DumpState's cost, so
    # larger w lowers r/(w+r) and the measured crossover must not rise.
    assert crossovers == sorted(crossovers, reverse=True)
    # Each measured crossover sits near (at or above, due to the CPU
    # charge) the predicted r/(w+r).
    for r in rows:
        assert r["measured_crossover_sel"] >= r["predicted_r/(w+r)"] - 0.05
        assert r["measured_crossover_sel"] <= r["predicted_r/(w+r)"] + 0.25
