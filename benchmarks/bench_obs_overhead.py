"""Observability overhead: the disabled tracer must cost <2%.

The `repro.obs` tracer's design contract is zero hot-path cost when
disabled: every instrumentation site checks ``tracer.enabled`` (or the
precomputed ``_trace_next`` flag in ``Operator.next``) before doing any
work. This benchmark proves it by A/B-timing a Figure-8-style run
(NLJ_S execute → LP suspend → resume → finish, over three selectivities):

- **seed**: ``Operator.next`` monkeypatched to the pre-observability
  body — the exact hot path the repo shipped before `repro.obs` existed
  (no ``_trace_next`` check at all);
- **disabled**: the shipped code with the default :class:`NullTracer`;
- **enabled**: a live :class:`Tracer` with ``next_sample_every=64``,
  reported for context (no threshold — tracing is allowed to cost).

Timings are best-of-N wall clock; the snapshot lands in
``BENCH_obs.json`` at the repo root so future PRs can track the
trajectory. Run directly (``python benchmarks/bench_obs_overhead.py``)
or via pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Optional

from repro.core.lifecycle import QuerySession, SuspendSpec, SuspendStrategy
from repro.engine.base import Operator, Row
from repro.obs import Tracer, use_tracer
from repro.workloads.plans import build_nlj_s

SCALE = 400
SELECTIVITIES = (0.1, 0.4, 0.8)
REPEATS = 5
THRESHOLD_PCT = 2.0

SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_obs.json"


def _seed_next(self) -> Optional[Row]:
    """``Operator.next`` exactly as it was before repro.obs existed."""
    self.rt.poll()
    if self._pending_rows:
        row = self._pending_rows.popleft()
    else:
        row = self._next()
    if row is not None:
        self.tuples_emitted += 1
        self.charge_cpu(1)
    return row


def fig8_style_run() -> None:
    for selectivity in SELECTIVITIES:
        db, plan = build_nlj_s(selectivity, scale=SCALE)
        session = QuerySession(db, plan, name="bench")
        session.execute(max_rows=50)
        sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
        resumed = QuerySession.resume(db, sq)
        resumed.execute()


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict:
    # Warm caches (imports, table generation code paths) off the clock.
    fig8_style_run()

    shipped_next = Operator.next
    Operator.next = _seed_next
    try:
        seed = best_of(fig8_style_run)
    finally:
        Operator.next = shipped_next

    disabled = best_of(fig8_style_run)

    def traced():
        with use_tracer(Tracer(next_sample_every=64)):
            fig8_style_run()

    enabled = best_of(traced)

    disabled_pct = 100.0 * (disabled - seed) / seed
    return {
        "benchmark": "obs_overhead",
        "workload": {
            "shape": "fig8-style NLJ_S execute/suspend(lp)/resume",
            "scale": SCALE,
            "selectivities": list(SELECTIVITIES),
            "repeats": REPEATS,
            "timer": "best-of wall clock (s)",
        },
        "seed_seconds": round(seed, 4),
        "disabled_tracer_seconds": round(disabled, 4),
        "enabled_tracer_seconds": round(enabled, 4),
        "disabled_overhead_pct": round(disabled_pct, 2),
        "enabled_overhead_pct": round(100.0 * (enabled - seed) / seed, 2),
        "threshold_pct": THRESHOLD_PCT,
        "pass": disabled_pct < THRESHOLD_PCT,
    }


def run_and_snapshot() -> dict:
    result = measure()
    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_disabled_tracer_overhead_under_threshold(benchmark):
    from benchmarks.conftest import once

    result = once(benchmark, run_and_snapshot)
    print(json.dumps(result, indent=2))
    assert result["pass"], (
        f"disabled-tracer overhead {result['disabled_overhead_pct']}% "
        f"exceeds {THRESHOLD_PCT}%"
    )


if __name__ == "__main__":
    snapshot = run_and_snapshot()
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {SNAPSHOT_PATH}]")
    raise SystemExit(0 if snapshot["pass"] else 1)
