"""Observability overhead: the disabled tracer must cost <2%.

The `repro.obs` tracer's design contract is zero hot-path cost when
disabled: every instrumentation site checks ``tracer.enabled`` (or the
precomputed ``_trace_next`` flag in ``Operator.next``) before doing any
work. This benchmark proves it by A/B-timing three workloads that
together cover every instrumented path:

- **single**: a Figure-8-style run (NLJ_S execute → LP suspend → resume
  → finish, over three selectivities) — the per-tuple engine hot path;
- **shard**: a 2-shard coordinator run with a mid-flight consistent-cut
  suspend and resume — the distributed path (per-pass progress,
  shard-tagged tracers, trace-id plumbing);
- **serve**: a continuation-token session driven quantum by quantum to
  completion — the serving path (per-quantum progress snapshots, token
  trace fields).

Each workload is timed three ways:

- **seed**: ``Operator.next`` monkeypatched to the pre-observability
  body — the exact hot path the repo shipped before `repro.obs` existed
  (no ``_trace_next`` check at all);
- **disabled**: the shipped code with the default :class:`NullTracer`;
- **enabled**: a live :class:`Tracer` with ``next_sample_every=64``,
  reported for context (no threshold — tracing is allowed to cost).

The <2% gate applies to the *combined* disabled-vs-seed overhead across
all three paths. Timings are best-of-N wall clock with the three modes
**interleaved within each round** (seed, disabled, enabled back to
back) so page-cache and CPU-frequency drift hits all three equally
instead of biasing whichever mode ran last; the short shard workload
additionally runs several iterations per timing sample so one sample is
long enough to measure. The snapshot lands in ``BENCH_obs.json`` at the
repo root so future PRs can track the trajectory. Run directly
(``python benchmarks/bench_obs_overhead.py``) or via pytest
(``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time
from typing import Optional

from repro.core.lifecycle import QuerySession, SuspendSpec, SuspendStrategy
from repro.durability import build_recipe
from repro.engine.base import Operator, Row
from repro.obs import Tracer, use_tracer
from repro.serve import QueryService, ServeConfig
from repro.shard import ShardCoordinator
from repro.workloads.plans import build_nlj_s, serve_catalog

SCALE = 400
SELECTIVITIES = (0.1, 0.4, 0.8)
REPEATS = 12
THRESHOLD_PCT = 2.0

SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_obs.json"


def _seed_next(self) -> Optional[Row]:
    """``Operator.next`` exactly as it was before repro.obs existed."""
    self.rt.poll()
    if self._pending_rows:
        row = self._pending_rows.popleft()
    else:
        row = self._next()
    if row is not None:
        self.tuples_emitted += 1
        self.charge_cpu(1)
    return row


def fig8_style_run() -> None:
    for selectivity in SELECTIVITIES:
        db, plan = build_nlj_s(selectivity, scale=SCALE)
        session = QuerySession(db, plan, name="bench")
        session.execute(max_rows=50)
        sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
        resumed = QuerySession.resume(db, sq)
        resumed.execute()


def shard_run() -> None:
    db, plan = build_recipe("hashjoin", scale=2, seed=1)
    with tempfile.TemporaryDirectory(prefix="bench-obs-shard-") as root:
        coord = ShardCoordinator(
            db, plan, num_shards=2, quantum_rows=32
        )
        coord.run(max_rows=32)
        coord.suspend_global(root, gid="bench")
        db2, _ = build_recipe("hashjoin", scale=2, seed=1)
        resumed = ShardCoordinator.resume(db2, root, "bench")
        resumed.run()
        resumed.close()


def serve_run() -> None:
    db_factory, catalog = serve_catalog(scale=8, seed=1)
    with tempfile.TemporaryDirectory(prefix="bench-obs-serve-") as root:
        service = QueryService(
            db_factory(),
            ServeConfig(
                quantum_rows=64, suspend=SuspendSpec(persist_to=root)
            ),
        )
        result = service.begin("bench", catalog["sorted-join"])
        while not result.done:
            result = service.continue_query(result.token)


#: (workload, iterations per timing sample) — the shard round trip is
#: only ~20ms, far too short for a wall-clock sample to resolve a 2%
#: delta, so one sample runs it several times.
WORKLOADS = {
    "single": (fig8_style_run, 1),
    "shard": (shard_run, 5),
    "serve": (serve_run, 1),
}


def measure_path(fn, inner: int = 1) -> dict:
    # Warm caches (imports, table generation code paths) off the clock.
    fn()

    shipped_next = Operator.next

    def seed_mode():
        Operator.next = _seed_next
        try:
            for _ in range(inner):
                fn()
        finally:
            Operator.next = shipped_next

    def disabled_mode():
        for _ in range(inner):
            fn()

    def enabled_mode():
        with use_tracer(Tracer(next_sample_every=64)):
            for _ in range(inner):
                fn()

    modes = (
        ("seed", seed_mode),
        ("disabled", disabled_mode),
        ("enabled", enabled_mode),
    )
    # Interleave: each round times all three modes back to back, so
    # machine drift between rounds cancels out of the A/B delta.
    best = {name: float("inf") for name, _ in modes}
    for _ in range(REPEATS):
        for name, mode in modes:
            start = time.perf_counter()
            mode()
            best[name] = min(best[name], time.perf_counter() - start)

    seed, disabled, enabled = (
        best["seed"] / inner,
        best["disabled"] / inner,
        best["enabled"] / inner,
    )
    return {
        "seed_seconds": round(seed, 4),
        "disabled_tracer_seconds": round(disabled, 4),
        "enabled_tracer_seconds": round(enabled, 4),
        "disabled_overhead_pct": round(
            100.0 * (disabled - seed) / seed, 2
        ),
        "enabled_overhead_pct": round(100.0 * (enabled - seed) / seed, 2),
    }


def measure() -> dict:
    paths = {
        name: measure_path(fn, inner)
        for name, (fn, inner) in WORKLOADS.items()
    }
    seed = sum(p["seed_seconds"] for p in paths.values())
    disabled = sum(p["disabled_tracer_seconds"] for p in paths.values())
    enabled = sum(p["enabled_tracer_seconds"] for p in paths.values())
    disabled_pct = 100.0 * (disabled - seed) / seed
    return {
        "benchmark": "obs_overhead",
        "workload": {
            "shape": "fig8-style NLJ_S + 2-shard cut/resume + "
            "continuation-token session",
            "scale": SCALE,
            "selectivities": list(SELECTIVITIES),
            "repeats": REPEATS,
            "timer": "best-of wall clock (s), modes interleaved per round",
        },
        "paths": paths,
        "seed_seconds": round(seed, 4),
        "disabled_tracer_seconds": round(disabled, 4),
        "enabled_tracer_seconds": round(enabled, 4),
        "disabled_overhead_pct": round(disabled_pct, 2),
        "enabled_overhead_pct": round(100.0 * (enabled - seed) / seed, 2),
        "threshold_pct": THRESHOLD_PCT,
        "pass": disabled_pct < THRESHOLD_PCT,
    }


def run_and_snapshot() -> dict:
    result = measure()
    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_disabled_tracer_overhead_under_threshold(benchmark):
    from benchmarks.conftest import once

    result = once(benchmark, run_and_snapshot)
    print(json.dumps(result, indent=2))
    assert result["pass"], (
        f"disabled-tracer overhead {result['disabled_overhead_pct']}% "
        f"exceeds {THRESHOLD_PCT}%"
    )


if __name__ == "__main__":
    snapshot = run_and_snapshot()
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {SNAPSHOT_PATH}]")
    raise SystemExit(0 if snapshot["pass"] else 1)
