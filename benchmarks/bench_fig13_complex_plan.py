"""Figures 11 and 13: the 10-operator complex plan.

Figure 11: the suspend plan the online optimizer chooses — a *hybrid*
(some operators dump, others go back), neither purist extreme.

Figure 13: total overhead and suspend-time overhead of the online plan
vs all-GoBack and all-DumpState. Expected shape: the hybrid beats both
on total overhead while keeping suspend time well below all-DumpState.
"""

import pytest

from repro.core.strategies import Strategy
from repro.harness.figures import fig13_results
from repro.harness.report import format_table

from benchmarks.conftest import once, record_result

SCALE = 100


def run_experiment():
    return fig13_results(scale=SCALE)


def test_fig13_complex_plan(benchmark):
    results, names = once(benchmark, run_experiment)
    rows = [
        {
            "strategy": s,
            "total_overhead": round(r.total_overhead, 1),
            "suspend_time": round(r.suspend_cost, 1),
            "resume_time": round(r.resume_cost, 1),
        }
        for s, r in results.items()
    ]
    text = format_table(
        rows,
        title=(
            "Figure 13 - complex 10-operator plan, suspend at 85% of the "
            "top NLJ buffer (filter selectivity 0.1)"
        ),
    )
    lp_plan = results["lp"].suspend_plan
    text += "\n\nFigure 11 - the hybrid suspend plan chosen online:\n"
    text += lp_plan.describe(names)
    record_result("fig13_complex_plan", text)

    lp = results["lp"]
    dump = results["all_dump"]
    goback = results["all_goback"]
    # The hybrid strictly beats both purist plans on total overhead.
    assert lp.total_overhead < dump.total_overhead
    assert lp.total_overhead < goback.total_overhead
    # And stays well below all-DumpState at suspend time.
    assert lp.suspend_cost < dump.suspend_cost
    # The chosen plan is genuinely hybrid.
    strategies = {d.strategy for d in lp_plan.decisions.values()}
    assert strategies == {Strategy.DUMP, Strategy.GOBACK}
