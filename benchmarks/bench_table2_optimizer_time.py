"""Table 2: suspend-plan optimizer time vs plan size.

The paper: left-deep NLJ chains with table scans at the leaves — the
worst case for the number of MIP variables/constraints — timed at 11 to
101 operators (1.6 ms to 59 ms on their testbed). We report the same
series for our formulation + HiGHS solve; the expected *shape* is
low-millisecond solves at small plans growing polynomially with plan
size, fast enough to run at suspend time.
"""

import time

import pytest

from repro import QuerySession
from repro.core.costs import build_cost_model
from repro.core.optimizer import build_lp_plan
from repro.harness import figures
from repro.harness.report import format_table
from repro.workloads import build_nlj_chain

from benchmarks.conftest import once, record_result

PLAN_SIZES = (11, 21, 41, 61, 81, 101)


def optimize_once(session):
    model = build_cost_model(session.runtime)
    plan = build_lp_plan(model)
    return model, plan


def prepared_session(num_operators):
    db, plan = build_nlj_chain(num_operators)
    session = QuerySession(db, plan)
    session.execute(max_rows=2)  # populate buffers and checkpoints
    return session


@pytest.fixture(scope="module")
def table2_rows():
    return figures.table2_rows(PLAN_SIZES)


def test_table2_series(benchmark, table2_rows):
    once(benchmark, lambda: table2_rows)
    text = format_table(
        table2_rows,
        title="Table 2 - optimizer time vs plan size (left-deep NLJ chains)",
    )
    record_result("table2_optimizer_time", text)
    times = [r["optimize_ms"] for r in table2_rows]
    # Shape: monotone-ish growth, still sub-second at 101 operators.
    assert times[-1] > times[0]
    assert times[-1] < 5_000


@pytest.mark.parametrize("k", PLAN_SIZES)
def test_optimizer_time(benchmark, k, table2_rows):
    session = prepared_session(k)
    benchmark(lambda: optimize_once(session))
