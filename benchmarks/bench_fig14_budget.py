"""Figure 14: total and suspend overhead vs the suspend budget.

Paper setup: a left-deep plan with 3 block NLJs of different outer buffer
sizes over a selectivity-0.1 filter. As the allowed suspend budget grows,
the optimizer moves from all-GoBack (cheap suspend, expensive resume)
through mixed plans to the unconstrained optimum: total overhead falls,
suspend-time overhead rises until it flattens at the optimum.
"""

import math

import pytest

from repro.harness.figures import fig14_rows
from repro.harness.report import format_table

from benchmarks.conftest import once, record_result

SCALE = 100
BUDGETS = (1.0, 10.0, 25.0, 60.0, 120.0, 250.0, math.inf)


def sweep():
    return fig14_rows(BUDGETS, scale=SCALE)


def test_fig14_budget_sweep(benchmark):
    rows = once(benchmark, sweep)
    text = format_table(
        rows,
        title=(
            "Figure 14 - left-deep 3-NLJ plan: overhead vs suspend budget "
            "(suspend at 85% of the top buffer)"
        ),
    )
    record_result("fig14_budget", text)

    numeric = [r for r in rows if r["total_overhead"] != "infeasible"]
    assert len(numeric) >= 4
    overheads = [r["total_overhead"] for r in numeric]
    suspends = [r["suspend_time"] for r in numeric]
    # Total overhead is non-increasing as the budget grows.
    assert all(a >= b - 1e-6 for a, b in zip(overheads, overheads[1:]))
    # The loosest budget strictly improves on the tightest.
    assert overheads[-1] < overheads[0]
    # Suspend time grows toward the unconstrained optimum, then flattens.
    assert suspends[-1] >= suspends[0]
    # The last two budgets coincide (optimum reached).
    assert overheads[-1] == pytest.approx(overheads[-2], abs=1.0)
