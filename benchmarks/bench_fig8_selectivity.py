"""Figure 8: NLJ_S — overhead vs filter selectivity for the three plans.

Paper setup: the NLJ_S plan (Figure 6), suspend halfway through filling
the NLJ outer buffer, filter selectivity swept. Expected shape (all
reproduced here):

- all-DumpState total overhead is flat in selectivity;
- all-GoBack total overhead falls as ~1/selectivity (the recomputation
  cost of the buffer);
- they cross near selectivity 0.28 (the write/read cost ratio);
- the online LP strategy always matches the better of the two;
- all-GoBack suspend *time* is near zero everywhere, all-DumpState's is
  large — the reason GoBack exists at all.
"""

import pytest

from repro.harness.figures import fig8_rows
from repro.harness.report import format_table

from benchmarks.conftest import once, record_result

SCALE = 100
SELECTIVITIES = (0.05, 0.1, 0.2, 0.28, 0.4, 0.6, 0.8, 1.0)


def sweep():
    return fig8_rows(SELECTIVITIES, scale=SCALE)


def test_fig8_selectivity_sweep(benchmark):
    rows = once(benchmark, sweep)
    text = format_table(
        rows,
        title=(
            "Figure 8 - NLJ_S total overhead & suspend time vs filter "
            "selectivity (suspend at 50% of outer buffer)"
        ),
    )
    record_result("fig8_selectivity", text)

    by_sel = {r["selectivity"]: r for r in rows}
    # DumpState wins at low selectivity, GoBack at high selectivity.
    assert (
        by_sel[0.05]["all_dump_overhead"]
        < by_sel[0.05]["all_goback_overhead"]
    )
    assert (
        by_sel[1.0]["all_goback_overhead"] < by_sel[1.0]["all_dump_overhead"]
    )
    # Crossover falls between 0.2 and 0.6 (paper: ~0.28 on PREDATOR).
    crossed = [
        sel
        for sel in SELECTIVITIES
        if by_sel[sel]["all_goback_overhead"]
        <= by_sel[sel]["all_dump_overhead"]
    ]
    assert crossed and 0.2 <= min(crossed) <= 0.6
    # LP tracks the minimum everywhere.
    for sel in SELECTIVITIES:
        best = min(
            by_sel[sel]["all_dump_overhead"],
            by_sel[sel]["all_goback_overhead"],
        )
        assert by_sel[sel]["lp_overhead"] <= best + 1.0
    # GoBack suspend time is far below DumpState's at every point.
    for sel in SELECTIVITIES:
        assert (
            by_sel[sel]["all_goback_suspend"]
            < by_sel[sel]["all_dump_suspend"] / 3
        )
