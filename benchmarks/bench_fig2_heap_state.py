"""Figure 2: heap state vs time for the two NLJs of the running example.

Reproduces the sawtooth of the paper's Figure 2: the child NLJ's outer
buffer fills and plateaus while it produces joins; the parent NLJ's buffer
fills from the child's output; each drop to zero is a minimal-heap-state
point where the operator checkpoints proactively.
"""

import pytest

from repro import Database, QuerySession
from repro.engine.plan import NLJSpec, ScanSpec
from repro.harness.report import format_table
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition

from benchmarks.conftest import once, record_result


def running_example():
    """R |x| S |x| T with two block NLJs (the paper's Figure 1)."""
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(600, seed=1))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(150, seed=2))
    db.create_table("T", BASE_SCHEMA, generate_uniform_table(150, seed=3))
    plan = NLJSpec(
        outer=NLJSpec(
            outer=ScanSpec("R", label="scan_R"),
            inner=ScanSpec("S", label="scan_S"),
            condition=EquiJoinCondition(0, 0, modulus=25),
            buffer_tuples=200,
            label="nlj1",
        ),
        inner=ScanSpec("T", label="scan_T"),
        condition=EquiJoinCondition(0, 0, modulus=25),
        buffer_tuples=300,
        label="nlj0",
    )
    return db, plan


def trace_heap_state(sample_every=97):
    db, plan = running_example()
    session = QuerySession(db, plan)
    samples = []
    counter = [0]

    def sampler(rt):
        counter[0] += 1
        if counter[0] % sample_every == 0:
            samples.append(
                {
                    "time": round(rt.disk.now, 1),
                    "nlj0_heap": rt.op_named("nlj0").heap_tuples(),
                    "nlj1_heap": rt.op_named("nlj1").heap_tuples(),
                }
            )
        return False

    session.execute(suspend_when=sampler, collect=False)
    graph = session.runtime.graph
    ckpts = {
        name: graph.latest_checkpoint(session.op_named(name).op_id).seq
        for name in ("nlj0", "nlj1")
    }
    return samples, ckpts


def test_fig2_sawtooth(benchmark):
    samples, ckpts = once(benchmark, trace_heap_state)
    text = format_table(
        samples[:60],
        title=(
            "Figure 2 - heap state vs virtual time for two NLJs "
            "(sampled; sawtooth = fills, plateaus, drops to zero)"
        ),
    )
    text += (
        f"\nproactive checkpoints taken: nlj0={ckpts['nlj0']}, "
        f"nlj1={ckpts['nlj1']} (one per minimal-heap-state point)"
    )
    record_result("fig2_heap_state", text)

    nlj1_values = [s["nlj1_heap"] for s in samples]
    # The child NLJ's heap rises to its buffer size and falls back (the
    # instantaneous zero between passes may land between samples; any
    # decrease proves a minimal-heap-state crossing).
    assert max(nlj1_values) == 200
    drops = sum(1 for a, b in zip(nlj1_values, nlj1_values[1:]) if b < a)
    assert drops >= 1
    # Each pass boundary produced a proactive checkpoint.
    assert ckpts["nlj1"] >= 2
