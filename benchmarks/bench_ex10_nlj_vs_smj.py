"""Example 10: NLJ vs SMJ with a pre-sorted inner, under suspends.

All of the paper's arithmetic is reproduced exactly: NLJ runs at 10,000
I/Os vs SMJ's 10,100; a suspend at 80,000 buffered tuples costs NLJ
~1,333 I/Os vs SMJ's worst-case 167; the crossover suspend point is
16,020 tuples; and since the average suspend lands halfway through the
90,000-tuple buffer, SMJ is the better plan when suspends are expected.
"""

import pytest

from repro.harness.figures import ex10_rows
from repro.harness.report import format_table
from repro.planning.cost_model import Example10Scenario
from repro.planning.planner import choose_plan_example10

from benchmarks.conftest import once, record_result

SUSPEND_POINTS = (0, 10_000, 16_020, 30_000, 45_000, 80_000)


def compute():
    return ex10_rows(SUSPEND_POINTS)


def test_ex10_nlj_vs_smj(benchmark):
    rows, crossover = once(benchmark, compute)
    text = format_table(
        rows,
        title=(
            "Example 10 - NLJ vs SMJ total I/O by suspend point "
            "(|R|=300k, |S|=350k pre-sorted, sel=0.6)"
        ),
    )
    text += f"\ncrossover suspend point: {crossover:.0f} tuples (paper: 16,020)"
    record_result("ex10_nlj_vs_smj", text)

    assert crossover == pytest.approx(16_020)
    by_fill = {r["buffer_fill"]: r for r in rows}
    assert by_fill[0]["winner"] == "NLJ"
    assert by_fill[10_000]["winner"] == "NLJ"
    assert by_fill[30_000]["winner"] == "SMJ"
    assert by_fill[80_000]["nlj_total_io"] == pytest.approx(11_333, abs=1)
    assert by_fill[80_000]["smj_total_io"] == 10_267
    # Average suspend point (half the buffer) favors SMJ.
    assert choose_plan_example10(
        suspend_at_buffer_fill=Example10Scenario().nlj_buffer_tuples / 2
    ).with_suspend == "SMJ"
