"""Batched-execution throughput: rows/sec, row path vs vectorized path.

The vectorized path (``Operator.next_batch``) must be a pure wall-clock
optimization: identical output rows, identical virtual-clock totals,
identical suspend/resume costs. This benchmark measures both paths on
four pipelines —

- **scan_filter_project**: Project(Filter(Scan R)) with a compiled
  predicate/projection fused over page segments;
- **hash_join**: SimpleHashJoin probe drain with a compiled key extractor;
- **aggregation**: HashGroupAggregate partition/emit drain;
- **mixed_scheduler**: four concurrent queries served by the
  QueryScheduler in 64-row quanta (one batched drain per quantum) —

and one **suspend_resume** cycle (execute → LP suspend → resume → finish)
whose simulated suspend/resume costs must match bit-for-bit.

Timings are best-of-N wall clock over freshly built databases (table
generation is off the clock). The snapshot lands in ``BENCH_perf.json``
at the repo root; the CI perf-smoke job runs the reduced-size suite
(``--quick`` / ``REPRO_BENCH_QUICK=1``) and fails if the virtual-clock
results diverge between paths. The full suite additionally enforces the
>=3x rows/sec target on scan_filter_project and hash_join.

Run directly (``python benchmarks/bench_throughput.py [--quick]``) or via
pytest (``pytest benchmarks/bench_throughput.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.core.checkpoint import Checkpoint, Contract
from repro.core.lifecycle import QuerySession, SuspendSpec, SuspendStrategy
from repro.core.suspended_query import OpSuspendEntry
from repro.engine.config import EngineConfig
from repro.engine.plan import (
    FilterSpec,
    HashGroupAggSpec,
    NLJSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect
from repro.service.scheduler import QueryScheduler, SchedulerConfig
from repro.storage.database import Database

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
SPEEDUP_TARGET = 3.0
SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_perf.json"


def _sizes():
    if QUICK:
        return {"r": 12_000, "s": 1_500, "sched_r": 3_000, "repeats": 2}
    return {"r": 60_000, "s": 5_000, "sched_r": 8_000, "repeats": 3}


def _rows_cache():
    sizes = _sizes()
    return {
        "R": generate_uniform_table(sizes["r"], seed=1),
        "S": generate_uniform_table(sizes["s"], seed=2),
        "SR": generate_uniform_table(sizes["sched_r"], seed=3),
        "SS": generate_uniform_table(max(400, sizes["s"] // 4), seed=4),
    }


_ROWS = None


def _db(tables) -> Database:
    global _ROWS
    if _ROWS is None:
        _ROWS = _rows_cache()
    db = Database()
    for name in tables:
        db.create_table(name, BASE_SCHEMA, _ROWS[name])
    return db


def _pipelines():
    yield "scan_filter_project", ("R",), ProjectSpec(
        FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5)), columns=(2, 0)
    )
    yield "hash_join", ("R", "S"), SimpleHashJoinSpec(
        build=ScanSpec("S"),
        probe=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.6)),
        condition=EquiJoinCondition(0, 0, modulus=2_000),
        num_partitions=8,
    )
    yield "aggregation", ("R",), HashGroupAggSpec(
        ScanSpec("R"),
        group_columns=(1,),
        agg_func="sum",
        agg_column=0,
        num_partitions=8,
    )


def _run_pipeline(tables, plan, batch: bool) -> dict:
    db = _db(tables)
    config = EngineConfig(batch_execution=batch)
    session = QuerySession(db, plan, config=config)
    start = time.perf_counter()
    session.execute(collect=False)
    elapsed = time.perf_counter() - start
    return {
        "count": _emitted(session),
        "seconds": elapsed,
        "vclock": repr(db.now),
        "pages_read": db.disk.counters.pages_read,
    }


def _emitted(session) -> int:
    return session.runtime.root().tuples_emitted


def _run_scheduler(batch: bool) -> dict:
    db = _db(("SR", "SS"))
    config = SchedulerConfig(
        quantum_rows=64,
        engine_config=EngineConfig(batch_execution=batch),
        collect_rows=False,
    )
    sched = QueryScheduler(db, config)
    sched.submit(
        "sfp",
        ProjectSpec(
            FilterSpec(ScanSpec("SR"), UniformSelect(1, 0.5)), columns=(2, 0)
        ),
    )
    sched.submit(
        "join",
        SimpleHashJoinSpec(
            build=ScanSpec("SS"),
            probe=ScanSpec("SR"),
            condition=EquiJoinCondition(0, 0, modulus=500),
            num_partitions=4,
        ),
        arrival_time=1.0,
    )
    sched.submit(
        "agg",
        HashGroupAggSpec(
            ScanSpec("SR"),
            group_columns=(1,),
            agg_func="max",
            agg_column=0,
            num_partitions=4,
        ),
        arrival_time=2.0,
    )
    sched.submit(
        "nlj",
        NLJSpec(
            outer=FilterSpec(ScanSpec("SS"), UniformSelect(1, 0.3)),
            inner=ScanSpec("SS"),
            condition=EquiJoinCondition(0, 0, modulus=200),
            buffer_tuples=500,
        ),
        arrival_time=3.0,
    )
    start = time.perf_counter()
    stats = sched.run()
    elapsed = time.perf_counter() - start
    return {
        "count": int(stats.registry.total("query_rows_emitted_total")),
        "seconds": elapsed,
        "vclock": repr(db.now),
        "pages_read": db.disk.counters.pages_read,
    }


def _run_suspend_resume(batch: bool) -> dict:
    db = _db(("R", "S"))
    plan = SimpleHashJoinSpec(
        build=ScanSpec("S"),
        probe=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.6)),
        condition=EquiJoinCondition(0, 0, modulus=2_000),
        num_partitions=8,
    )
    config = EngineConfig(batch_execution=batch)
    session = QuerySession(db, plan, config=config)
    start = time.perf_counter()
    session.execute(max_rows=200, collect=False)
    sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
    resumed = QuerySession.resume(db, sq, config=config)
    resumed.execute(collect=False)
    elapsed = time.perf_counter() - start
    return {
        "count": _emitted(resumed),
        "seconds": elapsed,
        "vclock": repr(db.now),
        "suspend_cost": repr(session.last_suspend_cost),
        "resume_cost": repr(resumed.last_resume_cost),
    }


def _best_of(fn, repeats: int) -> dict:
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    return best


def _slots_memory_note() -> dict:
    """Per-instance size of the hot (now ``__slots__``-based) classes,
    against a plain ``__dict__`` object carrying the same attributes."""

    class _DictBased:
        pass

    def dict_cost(obj, fields) -> int:
        clone = _DictBased()
        for name in fields:
            setattr(clone, name, getattr(obj, name))
        return sys.getsizeof(clone) + sys.getsizeof(clone.__dict__)

    ckpt = Checkpoint(op_id=1, seq=1, payload={}, work_at=0.0, emitted_at=0)
    contract = Contract(
        parent_op_id=1, child_op_id=2, control={}, child_ckpt_id=1,
        anchor_ckpt_id=1,
    )
    entry = OpSuspendEntry(op_id=1, kind="dump", target_control={})
    out = {}
    for name, obj in (
        ("Checkpoint", ckpt),
        ("Contract", contract),
        ("OpSuspendEntry", entry),
    ):
        fields = list(type(obj).__dataclass_fields__)
        slotted = sys.getsizeof(obj)
        dicted = dict_cost(obj, fields)
        out[name] = {
            "slots_bytes": slotted,
            "dict_equiv_bytes": dicted,
            "saved_bytes_per_instance": dicted - slotted,
        }
    return out


def measure() -> dict:
    sizes = _sizes()
    repeats = sizes["repeats"]
    benchmarks = {}
    ok = True

    for name, tables, plan in _pipelines():
        row = _best_of(lambda: _run_pipeline(tables, plan, False), repeats)
        batch = _best_of(lambda: _run_pipeline(tables, plan, True), repeats)
        benchmarks[name] = _compare(name, row, batch)
        ok = ok and benchmarks[name]["vclock_identical"]

    row = _best_of(lambda: _run_scheduler(False), repeats)
    batch = _best_of(lambda: _run_scheduler(True), repeats)
    benchmarks["mixed_scheduler"] = _compare("mixed_scheduler", row, batch)
    ok = ok and benchmarks["mixed_scheduler"]["vclock_identical"]

    row = _best_of(lambda: _run_suspend_resume(False), repeats)
    batch = _best_of(lambda: _run_suspend_resume(True), repeats)
    sr = _compare("suspend_resume", row, batch)
    sr["suspend_cost"] = batch["suspend_cost"]
    sr["resume_cost"] = batch["resume_cost"]
    sr["overheads_identical"] = (
        row["suspend_cost"] == batch["suspend_cost"]
        and row["resume_cost"] == batch["resume_cost"]
    )
    benchmarks["suspend_resume"] = sr
    ok = ok and sr["vclock_identical"] and sr["overheads_identical"]

    speedups_ok = all(
        benchmarks[name]["speedup"] >= SPEEDUP_TARGET
        for name in ("scan_filter_project", "hash_join")
    )
    return {
        "benchmark": "batched_execution_throughput",
        "quick": QUICK,
        "sizes": sizes,
        "speedup_target": SPEEDUP_TARGET,
        "benchmarks": benchmarks,
        "slots_memory": _slots_memory_note(),
        "vclock_identical": ok,
        "speedups_ok": speedups_ok,
        "pass": ok and (speedups_ok or QUICK),
    }


def _compare(name: str, row: dict, batch: dict) -> dict:
    count = batch["count"]
    out = {
        "rows_out": count,
        "row_seconds": round(row["seconds"], 4),
        "batch_seconds": round(batch["seconds"], 4),
        "row_rows_per_sec": round(count / row["seconds"]) if count else 0,
        "batch_rows_per_sec": round(count / batch["seconds"]) if count else 0,
        "speedup": round(row["seconds"] / batch["seconds"], 2),
        "vclock": batch["vclock"],
        "vclock_identical": (
            row["vclock"] == batch["vclock"]
            and row["count"] == batch["count"]
            and row.get("pages_read") == batch.get("pages_read")
        ),
    }
    return out


def run_and_snapshot() -> dict:
    result = measure()
    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_batched_throughput(benchmark):
    from benchmarks.conftest import once

    result = once(benchmark, run_and_snapshot)
    print(json.dumps(result, indent=2))
    assert result["vclock_identical"], "batch/row virtual-clock drift"
    assert result["benchmarks"]["suspend_resume"]["overheads_identical"]
    if not QUICK:
        assert result["speedups_ok"], (
            "batched path below the "
            f"{SPEEDUP_TARGET}x rows/sec target on a headline pipeline"
        )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        QUICK = True
    snapshot = run_and_snapshot()
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {SNAPSHOT_PATH}]")
    raise SystemExit(0 if snapshot["pass"] else 1)
