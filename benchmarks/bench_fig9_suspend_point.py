"""Figure 9: SMJ_S — overhead vs suspend point (% of sort buffer filled).

Paper setup: the SMJ_S plan (Figure 7), selectivity fixed at 0.5, the
suspend point swept across the fill fraction of the left sort's buffer.
Expected shape: whichever strategy wins at this selectivity keeps winning
at every suspend point, and the gap between the strategies widens as the
suspend point moves toward a full buffer (more state in memory). The LP
strategy always picks the winner.
"""

import pytest

from repro.harness.figures import fig9_rows
from repro.harness.report import format_table

from benchmarks.conftest import once, record_result

SCALE = 100
FILL_FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.95)


def sweep():
    return fig9_rows(FILL_FRACTIONS, scale=SCALE)


def test_fig9_suspend_point_sweep(benchmark):
    rows = once(benchmark, sweep)
    text = format_table(
        rows,
        title=(
            "Figure 9 - SMJ_S overhead vs suspend point "
            "(selectivity 0.5, suspend during first sort-buffer fill)"
        ),
    )
    record_result("fig9_suspend_point", text)

    gaps = [
        abs(r["all_dump_overhead"] - r["all_goback_overhead"]) for r in rows
    ]
    # The strategy gap widens with the suspend point.
    assert gaps[-1] > gaps[0]
    # The same strategy wins at every suspend point at this selectivity.
    winners = {
        "goback"
        if r["all_goback_overhead"] <= r["all_dump_overhead"]
        else "dump"
        for r in rows
    }
    assert len(winners) == 1
    # LP tracks the winner.
    for r in rows:
        best = min(r["all_dump_overhead"], r["all_goback_overhead"])
        assert r["lp_overhead"] <= best + 1.0
