"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6) or analytical study (Section 7): it computes the same
rows/series the paper reports, prints them, and records them under
``benchmarks/results/`` so EXPERIMENTS.md can cite the measured values.

The pytest-benchmark timings attached to each experiment measure the
simulation work itself (useful for tracking regressions in the engine),
not the paper's metric — the paper's metrics are the *simulated* costs
inside the printed tables.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
