"""Image data path: codec v2 vs v1, delta images, parallel commit.

The suspend-image fast path must be a pure wall-clock/bytes
optimization: identical resumed output, identical virtual-clock costs,
regardless of codec, delta chaining, or commit parallelism. This
benchmark proves the equivalences and measures the wins on one large
external-sort suspend (many sublist blobs — the image shape the paper's
dump strategy produces):

- **codec**: ``ImageStore.save`` + ``load`` wall clock and on-disk bytes,
  v1 tagged-JSON vs v2 binary columnar; both images resumed to
  completion in fresh databases and the outputs compared to the
  uninterrupted reference run.
- **delta**: suspend → save base → resume in place → suspend again →
  save; the repeat image commits against the base and must write a small
  fraction of the full re-commit's bytes.
- **parallel**: ``save_many`` of several independent suspends, serial vs
  a 4-worker pool; manifests (minus wall-clock timestamps) must match
  byte for byte.

The snapshot lands in ``BENCH_image.json`` at the repo root; the CI
image-perf-smoke job runs the reduced suite (``--quick`` /
``REPRO_BENCH_QUICK=1``) and fails if v2 is not faster/smaller than v1
or any resume output diverges. The full-size run additionally enforces
the >=5x encode+commit and >=3x size targets.

Run directly (``python benchmarks/bench_image_path.py [--quick]``) or
via pytest (``pytest benchmarks/bench_image_path.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

from repro.core.lifecycle import QuerySession
from repro.durability import CODEC_V1, CODEC_V2, ImageStore, SaveRequest
from repro.engine.plan import FilterSpec, ScanSpec, SortSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import UniformSelect
from repro.storage.database import Database

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
SPEED_TARGET = 5.0
SIZE_TARGET = 3.0
REPEATS = 3
SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_image.json"


def _sizes():
    if QUICK:
        return {"rows": 4_000, "buffer": 400, "suspend_at": 300}
    return {"rows": 40_000, "buffer": 2_000, "suspend_at": 2_000}


def build_db(seed: int = 7):
    sizes = _sizes()
    db = Database()
    db.create_table(
        "R", BASE_SCHEMA, generate_uniform_table(sizes["rows"], seed=seed)
    )
    db.catalog.set_predicate_selectivity("R", "uniform", 0.8)
    plan = SortSpec(
        FilterSpec(
            ScanSpec("R", label="scan_R"), UniformSelect(1, 0.8), label="f"
        ),
        key_columns=(0,),
        buffer_tuples=sizes["buffer"],
        label="sort",
    )
    return db, plan


def suspend_partway(seed: int = 7):
    db, plan = build_db(seed)
    session = QuerySession(db, plan, name=f"bench-{seed}")
    prefix = session.execute(max_rows=_sizes()["suspend_at"]).rows
    return db, plan, session, prefix


def reference_rows(seed: int = 7):
    db, plan = build_db(seed)
    return QuerySession(db, plan).execute().rows


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_codec(workdir: pathlib.Path, reference) -> dict:
    db, plan, session, prefix = suspend_partway()
    sq = session.suspend()
    out = {}
    for name, codec in (("v1", CODEC_V1), ("v2", CODEC_V2)):
        root = workdir / f"codec-{name}"

        def commit():
            shutil.rmtree(root, ignore_errors=True)
            store = ImageStore(str(root), codec_version=codec)
            store.save(sq, db.state_store, image_id="img")

        commit_s = best_of(commit)
        store = ImageStore(str(root), codec_version=codec)
        info = store.info("img")
        load_s = best_of(lambda s=store: s.load("img"))

        clock_before = db.now
        fresh_db, _ = build_db()
        resumed = QuerySession.resume(fresh_db, store.load("img"))
        rest = resumed.execute().rows
        out[name] = {
            "commit_seconds": round(commit_s, 4),
            "load_seconds": round(load_s, 4),
            "bytes": info.total_bytes,
            "num_blobs": info.num_blobs,
            "resume_cost": resumed.last_resume_cost,
            "rows_match_reference": prefix + rest == reference,
            "save_advanced_virtual_clock": db.now != clock_before,
        }
    out["commit_speedup"] = round(
        out["v1"]["commit_seconds"] / max(out["v2"]["commit_seconds"], 1e-9), 2
    )
    out["load_speedup"] = round(
        out["v1"]["load_seconds"] / max(out["v2"]["load_seconds"], 1e-9), 2
    )
    out["size_ratio"] = round(
        out["v1"]["bytes"] / max(out["v2"]["bytes"], 1), 2
    )
    return out


def bench_delta(workdir: pathlib.Path) -> dict:
    db, plan, session, _ = suspend_partway()
    sq1 = session.suspend()
    store = ImageStore(str(workdir / "delta"))
    base = store.save(sq1, db.state_store, image_id="base")

    resumed = QuerySession.resume(db, sq1)
    resumed.execute(max_rows=_sizes()["suspend_at"] // 2)
    sq2 = resumed.suspend()
    full = store.save(sq2, db.state_store, image_id="full")
    delta = store.save(
        sq2, db.state_store, image_id="delta", base_image_id="base"
    )
    return {
        "base_bytes": base.total_bytes,
        "full_recommit_bytes": full.total_bytes,
        "delta_bytes": delta.total_bytes,
        "delta_reused_bytes": delta.reused_bytes,
        "delta_ratio": round(
            delta.total_bytes / max(full.total_bytes, 1), 4
        ),
        "chain_length": delta.chain_length,
    }


def bench_parallel(workdir: pathlib.Path) -> dict:
    suspends = []
    for seed in (11, 12, 13, 14):
        db, plan, session, _ = suspend_partway(seed)
        suspends.append((db, session.suspend()))

    def requests():
        return [
            SaveRequest(sq, db.state_store, image_id=f"img-{i}")
            for i, (db, sq) in enumerate(suspends)
        ]

    results = {}
    manifests = {}
    for label, workers in (("serial", 0), ("parallel", 4)):
        root = workdir / f"commit-{label}"

        def commit():
            shutil.rmtree(root, ignore_errors=True)
            store = ImageStore(str(root), commit_workers=workers)
            store.save_many(requests())

        results[f"{label}_seconds"] = round(best_of(commit), 4)
        store = ImageStore(str(root))
        manifests[label] = {}
        for i in range(len(suspends)):
            manifest = dict(store.manifest(f"img-{i}"))
            manifest.pop("created_at")
            manifests[label][f"img-{i}"] = manifest
    results["images"] = len(suspends)
    results["speedup"] = round(
        results["serial_seconds"] / max(results["parallel_seconds"], 1e-9), 2
    )
    results["bytes_identical"] = manifests["serial"] == manifests["parallel"]
    return results


def measure() -> dict:
    reference = reference_rows()
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-image-"))
    try:
        codec = bench_codec(workdir, reference)
        delta = bench_delta(workdir)
        parallel = bench_parallel(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    equivalent = (
        codec["v1"]["rows_match_reference"]
        and codec["v2"]["rows_match_reference"]
        and codec["v1"]["resume_cost"] == codec["v2"]["resume_cost"]
        and not codec["v1"]["save_advanced_virtual_clock"]
        and not codec["v2"]["save_advanced_virtual_clock"]
        and parallel["bytes_identical"]
    )
    faster_and_smaller = (
        codec["commit_speedup"] > 1.0
        and codec["size_ratio"] > 1.0
        and delta["delta_ratio"] < 1.0
    )
    targets_met = (
        codec["commit_speedup"] >= SPEED_TARGET
        and codec["size_ratio"] >= SIZE_TARGET
    )
    return {
        "benchmark": "image_path",
        "workload": {
            "shape": "external sort suspend image (sublist blobs)",
            **_sizes(),
            "repeats": REPEATS,
            "timer": "best-of wall clock (s)",
        },
        "quick": QUICK,
        "codec": codec,
        "delta": delta,
        "parallel_commit": parallel,
        "equivalent": equivalent,
        "speed_target": SPEED_TARGET,
        "size_target": SIZE_TARGET,
        "targets_met": targets_met,
        # Quick mode only gates on correctness plus "v2 strictly wins";
        # the 5x/3x targets are enforced by the full-size run.
        "pass": equivalent and faster_and_smaller and (targets_met or QUICK),
    }


def run_and_snapshot() -> dict:
    result = measure()
    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_image_path_fast_and_equivalent(benchmark):
    from benchmarks.conftest import once

    result = once(benchmark, run_and_snapshot)
    print(json.dumps(result, indent=2))
    assert result["equivalent"], "codec/delta/parallel equivalence broken"
    assert result["pass"], (
        f"v2 speedup {result['codec']['commit_speedup']}x / size ratio "
        f"{result['codec']['size_ratio']}x below targets "
        f"({SPEED_TARGET}x / {SIZE_TARGET}x)"
    )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        QUICK = True
    snapshot = run_and_snapshot()
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {SNAPSHOT_PATH}]")
    raise SystemExit(0 if snapshot["pass"] else 1)
