"""Shared-work folding: burst I/O collapse and suspend parity.

Measures, on the virtual clock and the charged I/O counters:

- **burst folding** — K similar scan queries (K in {2, 4, 8}) served by
  the scheduler with folding off and on: charged page reads, virtual
  makespan, and wall time per burst. The acceptance bar is the issue's:
  a K=8 identical-scan burst must cost at most 2x the scan I/O of a
  single query (the fold drains the table essentially once);
- **suspend parity** — a folded member suspended mid-burst must leave a
  durable image byte-identical to an unfolded run's, resume correctly,
  and survive a *repeat* suspend after the fold split with the second
  image byte-identical too (per-query suspend/resume cost parity);
- **correctness gates** — folded burst outputs must equal the unfolded
  outputs query-for-query.

The snapshot lands in ``BENCH_fold.json`` at the repo root; the CI
``fold-smoke`` job runs the reduced suite (``REPRO_BENCH_QUICK=1``)
and fails on any divergence.

Run directly (``python benchmarks/bench_fold.py [--quick]``) or via
pytest (``pytest benchmarks/bench_fold.py``).
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import sys
import time

import repro.core.checkpoint as checkpoint_module
from repro import Database, QuerySession, SuspendSpec
from repro.core.lifecycle import QueryStatus
from repro.durability.codec2 import encode_suspended_query
from repro.engine.plan import FilterSpec, ProjectSpec, ScanSpec
from repro.fold.manager import FoldManager
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.service.core import SchedulerConfig
from repro.service.scheduler import QueryScheduler

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
SNAPSHOT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_fold.json"

BURST_SIZES = (2, 4, 8)


def _params() -> dict:
    if QUICK:
        return {"table_rows": 600, "quantum_rows": 32, "suspend_point": 20}
    return {"table_rows": 4000, "quantum_rows": 64, "suspend_point": 80}


def build_db(table_rows: int) -> Database:
    db = Database()
    db.create_table(
        "R", BASE_SCHEMA, generate_uniform_table(table_rows, seed=1)
    )
    return db


def burst_plan(i: int):
    # Similar-but-not-identical members: same R scan, different
    # selectivities, so only the shared scan folds.
    from repro.relational.expressions import UniformSelect

    return ProjectSpec(
        FilterSpec(ScanSpec("R"), UniformSelect(1, 0.3 + 0.05 * (i % 5))),
        columns=(0, 2),
    )


def reset_id_counters():
    checkpoint_module._ckpt_ids = itertools.count(1)
    checkpoint_module._contract_ids = itertools.count(1)


def run_burst(k: int, fold: bool, params: dict):
    db = build_db(params["table_rows"])
    scheduler = QueryScheduler(
        db, SchedulerConfig(fold=fold, quantum_rows=params["quantum_rows"])
    )
    for i in range(k):
        scheduler.submit(f"q{i}", burst_plan(i))
    start = time.perf_counter()
    stats = scheduler.run()
    wall = time.perf_counter() - start
    rows = {r.name: list(r.rows) for r in scheduler.records}
    return {
        "rows": rows,
        "pages_read": db.disk.counters.pages_read,
        "makespan": stats.makespan,
        "wall_seconds": wall,
        "fold": stats.fold,
    }


def measure_bursts(params: dict) -> dict:
    single_pages = run_burst(1, fold=False, params=params)["pages_read"]
    series = []
    ok = True
    for k in BURST_SIZES:
        base = run_burst(k, fold=False, params=params)
        folded = run_burst(k, fold=True, params=params)
        ok = ok and folded["rows"] == base["rows"]
        series.append(
            {
                "k": k,
                "pages_unfolded": base["pages_read"],
                "pages_folded": folded["pages_read"],
                "io_ratio": round(
                    folded["pages_read"] / base["pages_read"], 3
                ),
                "vs_single_query": round(
                    folded["pages_read"] / single_pages, 3
                ),
                "makespan_unfolded": round(base["makespan"], 2),
                "makespan_folded": round(folded["makespan"], 2),
                "wall_unfolded": round(base["wall_seconds"], 4),
                "wall_folded": round(folded["wall_seconds"], 4),
                "fold_stats": folded["fold"],
            }
        )
    k8 = next(s for s in series if s["k"] == 8)
    return {
        "single_query_pages": single_pages,
        "per_burst": series,
        "outputs_equal": ok,
        # The issue's acceptance criterion, recorded explicitly.
        "k8_within_2x_single_query": k8["vs_single_query"] <= 2.0,
    }


def _solo_double_suspend(plan, point: int):
    reset_id_counters()
    db = build_db(_params()["table_rows"])
    session = QuerySession(db, plan, name="victim")
    first = session.execute(max_rows=point)
    sq = session.suspend(SuspendSpec(strategy="all_dump"))
    image1 = encode_suspended_query(sq)
    resumed = QuerySession.resume(db, sq, name="victim")
    mid = resumed.execute(max_rows=point)
    sq2 = resumed.suspend(SuspendSpec(strategy="all_dump"))
    image2 = encode_suspended_query(sq2)
    final = QuerySession.resume(db, sq2, name="victim")
    rows = first.rows + mid.rows + final.execute().rows
    costs = (
        repr(resumed.last_resume_cost),
        repr(resumed.last_suspend_cost),
    )
    return rows, image1, image2, costs


def _folded_double_suspend(plan, sibling_plan, point: int):
    reset_id_counters()
    db = build_db(_params()["table_rows"])
    manager = FoldManager(db)
    victim = QuerySession(
        db, plan, name="victim", fold=manager.admit("victim", plan)
    )
    sibling = QuerySession(
        db,
        sibling_plan,
        name="sibling",
        fold=manager.admit("sibling", sibling_plan),
    )
    first = []
    while len(first) < point:
        first.extend(
            victim.execute(max_rows=min(10, point - len(first))).rows
        )
        if sibling.status is not QueryStatus.COMPLETED:
            sibling.execute(max_rows=10)
    sq = victim.suspend(SuspendSpec(strategy="all_dump"))
    manager.note_split("victim")
    image1 = encode_suspended_query(sq)
    resumed = QuerySession.resume(db, sq, name="victim")
    mid = resumed.execute(max_rows=point)
    sq2 = resumed.suspend(SuspendSpec(strategy="all_dump"))
    image2 = encode_suspended_query(sq2)
    final = QuerySession.resume(db, sq2, name="victim")
    rows = first + mid.rows + final.execute().rows
    if sibling.status is not QueryStatus.COMPLETED:
        sibling.execute()
    costs = (
        repr(resumed.last_resume_cost),
        repr(resumed.last_suspend_cost),
    )
    return rows, image1, image2, costs


def measure_suspend_parity(params: dict) -> dict:
    plan = burst_plan(0)
    sibling_plan = burst_plan(1)
    point = params["suspend_point"]
    solo = _solo_double_suspend(plan, point)
    folded = _folded_double_suspend(plan, sibling_plan, point)
    return {
        "suspend_point": point,
        "rows_equal": folded[0] == solo[0],
        "first_image_identical": folded[1] == solo[1],
        "repeat_image_identical": folded[2] == solo[2],
        "image_bytes": len(solo[1]),
        "resume_suspend_costs_equal": folded[3] == solo[3],
    }


def measure() -> dict:
    params = _params()
    start = time.perf_counter()
    bursts = measure_bursts(params)
    parity = measure_suspend_parity(params)
    wall_seconds = time.perf_counter() - start
    ok = (
        bursts["outputs_equal"]
        and bursts["k8_within_2x_single_query"]
        and parity["rows_equal"]
        and parity["first_image_identical"]
        and parity["repeat_image_identical"]
        and parity["resume_suspend_costs_equal"]
    )
    return {
        "benchmark": "shared_work_folding",
        "quick": QUICK,
        "params": params,
        "wall_seconds": round(wall_seconds, 2),
        "bursts": bursts,
        "suspend_parity": parity,
        "pass": ok,
    }


def run_and_snapshot() -> dict:
    result = measure()
    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_fold_bench(benchmark):
    from benchmarks.conftest import once

    result = once(benchmark, run_and_snapshot)
    print(json.dumps(result, indent=2))
    assert result["bursts"]["outputs_equal"], (
        "folded burst outputs diverged from the unfolded run"
    )
    assert result["bursts"]["k8_within_2x_single_query"]
    parity = result["suspend_parity"]
    assert parity["first_image_identical"]
    assert parity["repeat_image_identical"]
    assert parity["rows_equal"]


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        QUICK = True
    snapshot = run_and_snapshot()
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {SNAPSHOT_PATH}]")
    raise SystemExit(0 if snapshot["pass"] else 1)
