"""Figure 10: NLJ_S total-overhead surface over (suspend point x selectivity).

The paper's surface plot: all-GoBack and all-DumpState total overhead as
both the filter selectivity and the suspend point (fraction of the outer
buffer filled) vary. Expected shape: increasing selectivity flips the
preferred strategy; moving the suspend point deeper into the buffer
amplifies whichever difference exists.
"""

import pytest

from repro.harness.figures import fig10_rows
from repro.harness.report import format_table

from benchmarks.conftest import once, record_result

SCALE = 200
SELECTIVITIES = (0.1, 0.28, 0.6, 1.0)
FILL_FRACTIONS = (0.2, 0.5, 0.8)


def surface():
    return fig10_rows(SELECTIVITIES, FILL_FRACTIONS, scale=SCALE)


def test_fig10_surface(benchmark):
    rows = once(benchmark, surface)
    text = format_table(
        rows,
        title=(
            "Figure 10 - NLJ_S total overhead surface over "
            "(selectivity x suspend point)"
        ),
    )
    record_result("fig10_surface", text)

    cell = {(r["selectivity"], r["buffer_filled"]): r for r in rows}
    # Strategy preference flips along the selectivity axis.
    assert cell[(0.1, "80%")]["winner"] == "dump"
    assert cell[(1.0, "80%")]["winner"] == "goback"
    # Deeper suspend points amplify the difference at fixed selectivity.
    for sel in (0.1, 1.0):
        shallow = cell[(sel, "20%")]
        deep = cell[(sel, "80%")]
        gap_shallow = abs(shallow["all_dump"] - shallow["all_goback"])
        gap_deep = abs(deep["all_dump"] - deep["all_goback"])
        assert gap_deep >= gap_shallow
    # Overhead is monotone in the suspend point for each strategy.
    for sel in SELECTIVITIES:
        for strat in ("all_dump", "all_goback"):
            series = [cell[(sel, f)][strat] for f in ("20%", "50%", "80%")]
            assert series == sorted(series)
