"""Figure 15 / Example 9: HHJ vs SMJ, with and without suspends.

The Section 7 analytical study: for R(2.2M) |x| S(250k) with a 0.1-
selectivity filter on R and 150k tuples of memory, hybrid hash join beats
sort-merge join when no suspend occurs — but a suspend during the last
phase of the join is catastrophic for HHJ (its in-memory build partitions
have no materialization point), flipping the choice to SMJ.
"""

import pytest

from repro.harness.figures import fig15_rows
from repro.harness.report import format_table

from benchmarks.conftest import once, record_result


def compute():
    return fig15_rows()


def test_fig15_hhj_vs_smj(benchmark):
    rows, choice = once(benchmark, compute)
    text = format_table(
        rows,
        title=(
            "Figure 15 / Example 9 - HHJ vs SMJ disk I/Os, with and "
            "without a suspend during the last join phase "
            "(|R|=2.2M, |S|=250k, sel=0.1, memory=150k tuples)"
        ),
    )
    text += (
        f"\noptimizer choice without suspends: {choice.without_suspend}"
        f"\noptimizer choice expecting a suspend: {choice.with_suspend}"
    )
    record_result("fig15_plan_ahead", text)

    by_plan = {r["plan"]: r for r in rows}
    assert by_plan["HHJ"]["io_no_suspend"] < by_plan["SMJ"]["io_no_suspend"]
    assert (
        by_plan["SMJ"]["io_with_suspend"] < by_plan["HHJ"]["io_with_suspend"]
    )
    assert choice.flipped
