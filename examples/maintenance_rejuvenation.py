"""Software rejuvenation: reboot the DBMS without losing running queries.

One of the paper's motivating settings (Section 1): enterprise systems
are rebooted on a schedule to cure resource leaks, and predicting query
completion times is hard — so in-flight queries must be suspended within
a deadline, the process restarted, and the queries resumed afterwards.

This example runs several analytical queries to different depths,
suspends all of them under a per-query suspend budget, serializes their
SuspendedQuery structures (with payloads exported, they are
self-contained), "reboots" into a fresh process image whose disk still
holds the database, and resumes every query to completion.

Run:  python examples/maintenance_rejuvenation.py
"""

import pickle

from repro import (
    Database,
    FilterSpec,
    GroupAggSpec,
    NLJSpec,
    QuerySession,
    ScanSpec,
    SortSpec,
    SuspendSpec,
    SuspendStrategy,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def build_database():
    """The 'persistent disk': rebuilt identically across the reboot."""
    db = Database()
    db.create_table("sales", BASE_SCHEMA, generate_uniform_table(12_000, seed=21))
    db.create_table("stores", BASE_SCHEMA, generate_uniform_table(1_200, seed=22))
    return db


QUERIES = {
    "q_join": NLJSpec(
        outer=FilterSpec(ScanSpec("sales"), UniformSelect(1, 0.3), label="f1"),
        inner=ScanSpec("stores"),
        condition=EquiJoinCondition(0, 0, modulus=300),
        buffer_tuples=1_500,
        label="join",
    ),
    "q_agg": GroupAggSpec(
        child=SortSpec(
            FilterSpec(ScanSpec("sales"), UniformSelect(1, 0.5), label="f2"),
            key_columns=(0,),
            buffer_tuples=1_500,
            label="sort",
        ),
        group_columns=(0,),
        agg_func="count",
        agg_column=0,
        label="agg",
    ),
    "q_sort": SortSpec(
        FilterSpec(ScanSpec("sales"), UniformSelect(1, 0.8), label="f3"),
        key_columns=(1, 0),
        buffer_tuples=2_000,
        label="bigsort",
    ),
}

PROGRESS = {"q_join": 400, "q_agg": 300, "q_sort": 1_000}


def main():
    references = {
        name: QuerySession(build_database(), plan).execute().rows
        for name, plan in QUERIES.items()
    }

    # --- Before the maintenance window: queries are mid-flight. --------
    db = build_database()
    sessions = {}
    partials = {}
    for name, plan in QUERIES.items():
        session = QuerySession(db, plan)
        partials[name] = session.execute(max_rows=PROGRESS[name]).rows
        sessions[name] = session
    print("maintenance window opens; suspending in-flight queries:")

    # --- Suspend everything within a budget and serialize. -------------
    wire = {}
    deadline_budget = 40.0
    for name, session in sessions.items():
        sq = session.suspend(
            SuspendSpec(strategy=SuspendStrategy.LP, budget=deadline_budget)
        )
        sq.export_payloads(db.state_store)
        wire[name] = pickle.dumps(sq)
        print(
            f"  {name}: suspended in {session.last_suspend_cost:6.1f} units, "
            f"{len(wire[name]):,} bytes saved"
        )

    # --- Reboot: the old process image is gone. ------------------------
    del db, sessions
    print("rebooting the DBMS ...")
    fresh_db = build_database()

    # --- Resume every query on the rejuvenated instance. ---------------
    print("resuming:")
    for name in QUERIES:
        sq = pickle.loads(wire[name])
        resumed = QuerySession.resume(fresh_db, sq)
        rest = resumed.execute().rows
        combined = partials[name] + rest
        ok = combined == references[name]
        print(
            f"  {name}: +{len(rest)} rows after reboot "
            f"({'verified' if ok else 'MISMATCH'})"
        )
        assert ok
    print("all queries completed with no lost work across the reboot")


if __name__ == "__main__":
    main()
