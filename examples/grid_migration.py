"""Grid migration: suspend a query here, resume it in another process.

The paper's utility/Grid scenario (Section 1): when the owner of the
resources wants them back, the running query must release them quickly
and migrate elsewhere. A durable suspend image (`repro.durability`) is
the real-world version of that migration: node A commits the suspended
query — control record, suspend plan, every dumped payload — to a
checksummed on-disk image, and node B (a genuinely separate interpreter,
spawned here as a subprocess) rebuilds the same base tables from the
image's recipe metadata, loads the image, and finishes the query.

Run:  python examples/grid_migration.py
"""

import json
import os
import subprocess
import sys
import tempfile

from repro.core.lifecycle import QuerySession, SuspendSpec, SuspendStrategy
from repro.durability import ImageStore, build_recipe

RECIPE = "smj"  # sort-merge join: two external sorts' state in the image
ROWS_BEFORE_MIGRATION = 150


def main():
    # Reference output for verification.
    db, plan = build_recipe(RECIPE)
    reference = QuerySession(db, plan).execute().rows

    # Node A runs until the resource owner reclaims the machine.
    node_a, plan = build_recipe(RECIPE)
    session = QuerySession(node_a, plan)
    first = session.execute(max_rows=ROWS_BEFORE_MIGRATION)
    print(f"node A produced {len(first.rows)} rows; owner reclaims resources")

    # Suspend under a tight budget (migration must be quick) and commit
    # the result as a durable image; the recipe metadata lets any process
    # rebuild the identical base tables.
    image_root = tempfile.mkdtemp(prefix="grid-images-")
    session.suspend(
        SuspendSpec(strategy=SuspendStrategy.LP, budget=50.0),
        persist_to=image_root,
        image_meta={"recipe": RECIPE, "scale": 1, "seed": 0},
    )
    info = session.last_image
    print(
        f"suspend cost {session.last_suspend_cost:.1f} units; image "
        f"{info.image_id} committed: {info.total_bytes:,} bytes on disk "
        f"({info.num_blobs} payload blobs, {info.blob_pages} pages)"
    )

    # Node B is a separate interpreter: resume from nothing but the image.
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    out = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "resume-image",
            "--images",
            image_root,
            "--id",
            info.image_id,
            "--json",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    result = json.loads(out.stdout)
    rest = [tuple(r) for r in result["rows"]]
    print(
        f"node B (pid of a fresh interpreter) resume cost "
        f"{result['resume_cost']:.1f} units, finished with {len(rest)} more rows"
    )

    combined = first.rows + rest
    assert combined == reference, (
        f"migrated output diverged: {len(combined)} vs {len(reference)} rows"
    )
    print("combined output verified identical to an uninterrupted run")


if __name__ == "__main__":
    main()
