"""Grid migration: suspend a query here, resume it on a replica.

The paper's utility/Grid scenario (Section 1): when the owner of the
resources wants them back, the running query must release them quickly
and migrate elsewhere. A SuspendedQuery is a self-contained, serializable
description of the query's progress: with the dumped heap-state payloads
exported into it, it can be pickled, shipped to a replica DBMS with the
same physical tables, and resumed there.

Run:  python examples/grid_migration.py
"""

import pickle

from repro import (
    Database,
    FilterSpec,
    MergeJoinSpec,
    QuerySession,
    ScanSpec,
    SortSpec,
    SuspendOptions,
    SuspendStrategy,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def build_node_a():
    db = Database()
    db.create_table("events", BASE_SCHEMA, generate_uniform_table(8_000, seed=4))
    db.create_table("users", BASE_SCHEMA, generate_uniform_table(8_000, seed=5))
    return db


def plan():
    return MergeJoinSpec(
        left=SortSpec(
            FilterSpec(ScanSpec("events"), UniformSelect(1, 0.5), label="f"),
            key_columns=(0,),
            buffer_tuples=1_500,
            label="sort_events",
        ),
        right=SortSpec(
            ScanSpec("users"), key_columns=(0,), buffer_tuples=1_500,
            label="sort_users",
        ),
        condition=EquiJoinCondition(0, 0),
        label="join",
    )


def main():
    node_a = build_node_a()

    # Reference output for verification.
    reference = QuerySession(build_node_a(), plan()).execute().rows

    # Run on node A until the resource owner reclaims the machine.
    session = QuerySession(node_a, plan())
    first = session.execute(max_rows=2_000)
    print(f"node A produced {len(first.rows)} rows; owner reclaims resources")

    # Suspend under a tight budget (migration must be quick) and export
    # the dumped payloads into the structure so it is self-contained.
    sq = session.suspend(
        SuspendOptions(strategy=SuspendStrategy.LP, budget=20.0)
    )
    sq.export_payloads(node_a.state_store)
    wire = pickle.dumps(sq)
    print(
        f"suspend cost {session.last_suspend_cost:.1f} units; "
        f"SuspendedQuery serialized to {len(wire):,} bytes"
    )

    # Node B: a replica with the same physical database state.
    node_b = node_a.replicate()
    shipped = pickle.loads(wire)
    resumed = QuerySession.resume(node_b, shipped)
    print(
        f"node B resume cost {resumed.last_resume_cost:.1f} units "
        "(includes re-homing the shipped state)"
    )

    rest = resumed.execute()
    print(f"node B finished with {len(rest.rows)} more rows")
    assert first.rows + rest.rows == reference
    print("combined output verified identical to an uninterrupted run")


if __name__ == "__main__":
    main()
