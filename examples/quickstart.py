"""Quickstart: execute, suspend, and resume a query.

Builds a small database, runs a filtered nested-loop join, suspends it
mid-flight with the online (LP) suspend-plan optimizer, and resumes it —
demonstrating that the resumed query continues exactly where it stopped.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    FilterSpec,
    NLJSpec,
    QuerySession,
    ScanSpec,
    SuspendSpec,
    SuspendStrategy,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def main():
    # 1. A database with two tables (loading is uncharged setup work).
    db = Database()
    db.create_table("orders", BASE_SCHEMA, generate_uniform_table(5_000, seed=1))
    db.create_table("parts", BASE_SCHEMA, generate_uniform_table(1_000, seed=2))

    # 2. A physical plan: NLJ( filter(scan orders), scan parts ).
    plan = NLJSpec(
        outer=FilterSpec(
            ScanSpec("orders", label="scan_orders"),
            UniformSelect(1, 0.4),
            label="filter",
        ),
        inner=ScanSpec("parts", label="scan_parts"),
        condition=EquiJoinCondition(0, 0, modulus=200),
        buffer_tuples=500,
        label="join",
    )

    # 3. Execute until the join's outer buffer is half full, then stop at
    # the next safe point (the paper's "suspend exception").
    session = QuerySession(db, plan)
    result = session.execute(
        suspend_when=lambda rt: rt.op_named("join").buffer_fill() >= 250
    )
    print(f"produced {len(result.rows)} rows before the suspend request")
    print(f"join buffer holds {session.op_named('join').buffer_fill()} tuples")

    # 4. Suspend. The online optimizer picks DumpState or GoBack per
    # operator from exact runtime state; all resources are then released.
    sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
    print("\nchosen suspend plan:")
    print(sq.suspend_plan.describe({0: "join", 1: "filter",
                                    2: "scan_orders", 3: "scan_parts"}))
    print(f"suspend cost: {session.last_suspend_cost:.1f} simulated time units")

    # 5. Resume later: the next tuple is exactly the one after the last
    # delivered before suspension.
    resumed = QuerySession.resume(db, sq)
    print(f"resume cost: {resumed.last_resume_cost:.1f} simulated time units")
    rest = resumed.execute()
    total = len(result.rows) + len(rest.rows)
    print(f"\nresumed and finished: {len(rest.rows)} more rows, {total} total")

    # 6. Verify against an uninterrupted run.
    db2 = Database()
    db2.create_table("orders", BASE_SCHEMA, generate_uniform_table(5_000, seed=1))
    db2.create_table("parts", BASE_SCHEMA, generate_uniform_table(1_000, seed=2))
    reference = QuerySession(db2, plan).execute().rows
    assert result.rows + rest.rows == reference
    print("output verified identical to an uninterrupted run")


if __name__ == "__main__":
    main()
