"""Suspend-budget tuning: the Figure 14 tradeoff, interactively.

The DBA (or admission controller) grants the suspend phase a time budget.
Tighter budgets force GoBack strategies (fast suspend, expensive resume);
looser ones let the optimizer dump the state that is expensive to
recompute. This example sweeps the budget on the paper's complex plan and
prints the chosen per-operator plan at each level.

Run:  python examples/suspend_budget_tuning.py
"""

import math

from repro import QuerySession
from repro.common.errors import SuspendBudgetInfeasibleError
from repro.harness.experiments import (
    measure_suspend_overhead,
    nlj_buffer_trigger,
    run_reference_to_milestone,
)
from repro.workloads import build_complex_plan

SCALE = 200
BUDGETS = (1.0, 15.0, 40.0, 100.0, math.inf)


def main():
    factory = lambda: build_complex_plan(scale=SCALE)
    _, plan = factory()
    trigger = nlj_buffer_trigger("nlj0", int(0.85 * plan.buffer_tuples))
    db, p = factory()
    reference, _ = run_reference_to_milestone(db, p, trigger)

    # Names for rendering plans.
    db2, p2 = factory()
    probe = QuerySession(db2, p2)
    probe.execute(suspend_when=trigger)
    names = probe.operator_names()

    print(f"{'budget':>10} {'suspend':>9} {'resume':>9} {'total ovh':>10}  plan")
    for budget in BUDGETS:
        try:
            result = measure_suspend_overhead(
                factory, trigger, "lp", budget=budget, reference_cost=reference
            )
        except SuspendBudgetInfeasibleError:
            print(f"{budget:>10} {'-':>9} {'-':>9} {'infeasible':>10}")
            continue
        label = "unlimited" if budget == math.inf else f"{budget:g}"
        dumps = sum(
            1
            for d in result.suspend_plan.decisions.values()
            if d.strategy.value == "dump"
        )
        print(
            f"{label:>10} {result.suspend_cost:>9.1f} "
            f"{result.resume_cost:>9.1f} {result.total_overhead:>10.1f}  "
            f"{dumps}/{len(result.suspend_plan.decisions)} operators dump"
        )

    print("\nplan at the unlimited budget:")
    unconstrained = measure_suspend_overhead(
        factory, trigger, "lp", reference_cost=reference
    )
    print(unconstrained.suspend_plan.describe(names))
    print(
        "\ntakeaway: total overhead falls as the budget grows, while the "
        "suspend phase\nitself gets slower — the DBA picks the point on "
        "the curve the workload needs."
    )


if __name__ == "__main__":
    main()
