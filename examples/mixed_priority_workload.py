"""Mixed-priority workload: suspend Q_lo so Q_hi can run immediately.

The paper's motivating scenario (Section 1): a long-running analytical
query Q_lo occupies a large amount of memory when a high-priority query
Q_hi arrives. Three policies are compared on simulated time:

- kill-and-restart: throw away Q_lo's work, rerun it after Q_hi;
- wait: let Q_lo finish before starting Q_hi (terrible Q_hi latency);
- suspend/resume: release Q_lo's resources within a suspend budget, run
  Q_hi, resume Q_lo without losing its progress.

Run:  python examples/mixed_priority_workload.py
"""

from repro import Database, QuerySession
from repro.engine.plan import FilterSpec, NLJSpec, ScanSpec, SortSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def fresh_db():
    db = Database()
    db.create_table("facts", BASE_SCHEMA, generate_uniform_table(20_000, seed=1))
    db.create_table("dims", BASE_SCHEMA, generate_uniform_table(2_000, seed=2))
    db.create_table("hot", BASE_SCHEMA, generate_uniform_table(3_000, seed=3))
    return db


def q_lo_plan():
    """Long-running analytical join over the fact table."""
    return NLJSpec(
        outer=FilterSpec(
            ScanSpec("facts", label="scan_facts"),
            UniformSelect(1, 0.2),
            label="filter",
        ),
        inner=ScanSpec("dims", label="scan_dims"),
        condition=EquiJoinCondition(0, 0, modulus=500),
        buffer_tuples=2_000,
        label="q_lo_join",
    )


def q_hi_plan():
    """High-priority query: a quick sorted aggregate over 'hot'."""
    return SortSpec(
        FilterSpec(ScanSpec("hot"), UniformSelect(1, 0.5)),
        key_columns=(0,),
        buffer_tuples=2_000,
        label="q_hi_sort",
    )


def run_q_hi(db):
    start = db.now
    QuerySession(db, q_hi_plan()).execute()
    return db.now - start


ARRIVAL_TRIGGER = (
    lambda rt: rt.op_named("q_lo_join").tuples_emitted >= 4_000
)  # Q_hi arrives once Q_lo is well into its work


def policy_suspend_resume():
    db = fresh_db()
    q_lo = QuerySession(db, q_lo_plan())
    q_lo.execute(suspend_when=ARRIVAL_TRIGGER)
    arrival = db.now  # Q_hi arrives now

    held = q_lo.memory_in_use()
    sq = q_lo.suspend(strategy="lp", budget=60.0)
    print(
        f"    (Q_lo held {held:,} bytes of operator state; "
        f"{q_lo.memory_in_use():,} after suspend)"
    )
    q_hi_starts = db.now
    q_hi_latency = (q_hi_starts - arrival) + run_q_hi(db)

    resumed = QuerySession.resume(db, sq)
    resumed.execute()
    return q_hi_latency, db.now, len(q_lo.rows) + len(resumed.rows)


def policy_kill_and_restart():
    db = fresh_db()
    q_lo = QuerySession(db, q_lo_plan())
    q_lo.execute(suspend_when=ARRIVAL_TRIGGER)
    arrival = db.now
    # Kill: all of Q_lo's work so far is wasted.
    q_hi_latency = run_q_hi(db)
    restarted = QuerySession(db, q_lo_plan())
    restarted.execute()
    return q_hi_latency, db.now, len(restarted.rows)


def policy_wait():
    db = fresh_db()
    q_lo = QuerySession(db, q_lo_plan())
    q_lo.execute(suspend_when=ARRIVAL_TRIGGER)
    arrival = db.now
    q_lo.status = type(q_lo.status).RUNNING
    q_lo.execute()  # Q_hi has to wait for Q_lo to finish
    wait = db.now - arrival
    q_hi_latency = wait + run_q_hi(db)
    return q_hi_latency, db.now, len(q_lo.rows)


def main():
    print(f"{'policy':>20} {'Q_hi latency':>14} {'makespan':>10} {'Q_lo rows':>10}")
    for name, policy in (
        ("suspend/resume", policy_suspend_resume),
        ("kill-and-restart", policy_kill_and_restart),
        ("wait for Q_lo", policy_wait),
    ):
        latency, makespan, rows = policy()
        print(f"{name:>20} {latency:>14.1f} {makespan:>10.1f} {rows:>10}")
    print(
        "\nsuspend/resume gives Q_hi near-immediate service (small suspend "
        "budget)\nwithout wasting Q_lo's completed work, so its makespan "
        "beats kill-and-restart."
    )


if __name__ == "__main__":
    main()
