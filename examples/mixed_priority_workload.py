"""Mixed-priority workload: suspend Q_lo so Q_hi can run immediately.

The paper's motivating scenario (Section 1): a long-running analytical
query Q_lo occupies a large amount of memory when a high-priority query
Q_hi arrives. Three scheduler pressure policies are compared on
simulated time:

- kill-restart: throw away Q_lo's work, rerun it after Q_hi;
- wait: let Q_lo finish before starting Q_hi (terrible Q_hi latency);
- suspend-resume: release Q_lo's resources within a suspend budget, run
  Q_hi, resume Q_lo without losing its progress.

The workload itself lives in :func:`repro.workloads.mixed_priority_trace`
(Q_lo arrives at t=0 at priority 0; Q_hi arrives mid-flight at priority
10; the memory budget is half of Q_lo's solo peak, so Q_hi's admission
always creates pressure). The scheduler replays the same arrival trace
under each policy on identical fresh databases.

Run:  python examples/mixed_priority_workload.py
"""

from repro.harness import compare_policies, policy_comparison_rows, print_table
from repro.workloads import mixed_priority_trace


def main():
    workload = mixed_priority_trace(scale=4, seed=1)
    results = compare_policies(workload)

    print_table(
        policy_comparison_rows(results),
        title="policy comparison (best combined turnaround first)",
    )

    sr = results["suspend-resume"]
    print("\nsuspend-resume timeline:")
    for event in sr.timeline:
        print(
            f"  t={event.time:7.2f}  {event.event:<8} {event.query:<6} "
            f"(live memory {event.memory_bytes:,} bytes)"
        )

    best = min(results, key=lambda p: results[p].total_turnaround())
    print(
        f"\nbest policy: {best} — Q_hi gets near-immediate service (small "
        "suspend budget)\nwithout wasting Q_lo's completed work, so the "
        "combined turnaround beats both\nkill-restart and wait."
    )
    assert best == "suspend-resume"


if __name__ == "__main__":
    main()
