"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``wheel`` for PEP 660
editable installs; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``python setup.py develop``) work in the
offline test environment. Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
